package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxCheck enforces context threading, the invariant cancellation is
// built on: a query cancelled while blocked on the admission budget
// must unblock promptly, which only works if exec.Env.Ctx is the
// caller's context all the way down. Three rules:
//
//  1. context.Background() / context.TODO() are banned in internal/
//     non-test code: each silently severs cancellation for everything
//     downstream. Genuine roots (anonymous entry points, deliberately
//     detached lifetimes) are annotated //lint:allow ctxcheck <reason>.
//  2. In internal/exec, a goroutine spawned by a function that has a
//     context in reach (a ctx parameter, or an *Env with its Ctx
//     field) must thread it — capture the ctx, the Env, or pass one
//     in — or the work it starts outlives the query that asked for it.
//  3. In internal/exec, a keyed mountsvc.Request literal must set Ctx:
//     a request without it waits on the admission gate uncancellably.
//
// Test files never reach the analyzer: the loader follows `go list`,
// which excludes them.
var CtxCheck = &Analyzer{
	Name: "ctxcheck",
	Doc:  "bans context.Background/TODO in internal/ code and flags exec operators dropping Env.Ctx",
	Run:  runCtxCheck,
}

const (
	execPkgSuffix     = "internal/exec"
	mountsvcPkgSuffix = "internal/mountsvc"
)

func runCtxCheck(pass *Pass) {
	if !strings.Contains("/"+pass.Pkg.PkgPath+"/", "/internal/") {
		return // cmd/ and examples/ are entry points; roots are expected
	}
	isExec := pkgPathHasSuffix(pass.Pkg.Types, execPkgSuffix)
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCtxRoot(pass, n)
			case *ast.FuncDecl:
				if isExec && n.Body != nil {
					checkGoroutines(pass, n)
				}
			case *ast.CompositeLit:
				if isExec {
					checkRequestLit(pass, n)
				}
			}
			return true
		})
	}
}

// checkCtxRoot flags context.Background() and context.TODO().
func checkCtxRoot(pass *Pass, call *ast.CallExpr) {
	fn, ok := calleeOf(pass.Pkg.Info, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		pass.Reportf(call.Pos(),
			"context.%s() severs cancellation in internal code; thread the caller's ctx", fn.Name())
	}
}

// checkGoroutines flags `go` statements that drop a reachable context.
func checkGoroutines(pass *Pass, fd *ast.FuncDecl) {
	if !funcHasCtxInReach(pass, fd) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if !threadsCtx(pass, g.Call) {
			pass.Reportf(g.Pos(),
				"goroutine drops the reachable context (Env.Ctx); capture or pass it so the work dies with the query")
		}
		return true
	})
}

// funcHasCtxInReach reports whether the function's receiver or
// parameters put a context within reach: a context.Context directly,
// or a struct (like exec.Env) carrying an exported Ctx context field.
func funcHasCtxInReach(pass *Pass, fd *ast.FuncDecl) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			tv, ok := pass.Pkg.Info.Types[f.Type]
			if !ok {
				continue
			}
			if isContextType(tv.Type) || hasCtxField(tv.Type) {
				return true
			}
		}
		return false
	}
	return check(fd.Recv) || check(fd.Type.Params)
}

// hasCtxField reports whether t (or *t) is a struct with a Ctx field
// of type context.Context.
func hasCtxField(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "Ctx" && isContextType(f.Type()) {
			return true
		}
	}
	return false
}

// threadsCtx reports whether the spawned call mentions a context: an
// expression of type context.Context (a captured ctx, env.Ctx, an
// argument) or a value that carries one (the Env itself).
func threadsCtx(pass *Pass, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := pass.Pkg.Info.Types[e]; ok && tv.Type != nil {
			if isContextType(tv.Type) || hasCtxField(tv.Type) {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkRequestLit flags keyed mountsvc.Request literals without a Ctx
// field. (An unkeyed literal necessarily positions every field and is
// left to the compiler.)
func checkRequestLit(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Pkg.Info.Types[lit]
	if !ok {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Name() != "Request" || !pkgPathHasSuffix(named.Obj().Pkg(), mountsvcPkgSuffix) {
		return
	}
	if len(lit.Elts) == 0 {
		return // zero literal: a template, not a request being issued
	}
	keyed := false
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		keyed = true
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Ctx" {
			return
		}
	}
	if keyed {
		pass.Reportf(lit.Pos(), "mountsvc.Request built without Ctx: the mount's admission wait cannot be cancelled")
	}
}
