package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// This file is the suite's package loader. The usual driver for
// go/analysis analyzers is golang.org/x/tools, but this module is
// dependency-free by policy, so the loader is built on what the
// toolchain already ships: `go list -deps -json` resolves the package
// graph (build constraints applied, testdata directories skipped,
// dependencies emitted before dependents), and go/parser + go/types
// type-check every package from source in that order. Import
// resolution is a map lookup over the packages already checked, which
// is exactly what makes from-source checking of the stdlib closure
// tractable.

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath  string
	Dir      string
	Files    []*ast.File
	Types    *types.Package
	Info     *types.Info
	Standard bool // part of the Go standard library
}

// Universe is the loaded program: every package in the dependency
// closure of the requested patterns, plus shared position information
// and the cross-package facts analyzers consult (see facts.go).
type Universe struct {
	Fset     *token.FileSet
	Packages map[string]*Package // by import path
	Module   []*Package          // non-stdlib packages, load order

	paramWrites map[*types.Func][]bool
	allows      map[string][]allowDirective // file -> directives
	usedAllows  map[allowKey]bool           // directives that suppressed a diagnostic

	funcFacts       map[*types.Func]*funcFact      // mayblock + lock-set facts
	mutexNames      map[types.Object]string        // mutex object -> display name
	statsWrites     map[*types.Var]map[string]bool // Stats field -> writing package paths
	statsFieldOwner map[*types.Var]*types.Named    // Stats field -> declaring struct
	guardedStat     map[*types.Named]bool          // lazily computed; see statcheck.go
	classifiedPkgs  map[*Package]bool              // packages already classified for guardedStat
	lockGraph       *lockGraph                     // lazily computed; see lockcheck.go
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	Error      *struct{ Err string }
}

// Load type-checks the dependency closure of patterns (e.g. "./...")
// resolved relative to dir, which must sit inside a Go module.
func Load(dir string, patterns ...string) (*Universe, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-deps", "-json=ImportPath,Dir,Name,GoFiles,CgoFiles,Standard,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// CGO off: cgo-constrained files drop out of GoFiles and the pure-Go
	// fallbacks are selected, so every listed file type-checks as plain Go.
	cmd.Env = append(cmd.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	u := &Universe{
		Fset:        token.NewFileSet(),
		Packages:    make(map[string]*Package),
		paramWrites: make(map[*types.Func][]bool),
		allows:      make(map[string][]allowDirective),
		usedAllows:  make(map[allowKey]bool),
		funcFacts:   make(map[*types.Func]*funcFact),
		mutexNames:  make(map[types.Object]string),
		statsWrites: make(map[*types.Var]map[string]bool),

		statsFieldOwner: make(map[*types.Var]*types.Named),
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if err := u.addPackage(&lp); err != nil {
			return nil, err
		}
	}
	u.collectFacts()
	return u, nil
}

// addPackage parses and type-checks one listed package. Dependencies
// have already been added (go list -deps emits them first).
func (u *Universe) addPackage(lp *listedPackage) error {
	if lp.ImportPath == "unsafe" {
		u.Packages["unsafe"] = &Package{PkgPath: "unsafe", Types: types.Unsafe, Standard: true}
		return nil
	}
	if len(lp.CgoFiles) > 0 {
		return fmt.Errorf("lint: %s: cgo packages are not supported by the loader", lp.ImportPath)
	}
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(u.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("lint: parsing %s: %v", lp.ImportPath, err)
		}
		files = append(files, f)
	}
	pkg := &Package{PkgPath: lp.ImportPath, Dir: lp.Dir, Files: files, Standard: lp.Standard}
	tpkg, info, err := u.check(lp.ImportPath, files, !lp.Standard)
	if err != nil {
		return err
	}
	pkg.Types, pkg.Info = tpkg, info
	u.Packages[lp.ImportPath] = pkg
	// Standard-library vendored imports are spelled without the vendor/
	// prefix in source; register both names.
	if rest, ok := strings.CutPrefix(lp.ImportPath, "vendor/"); ok {
		u.Packages[rest] = pkg
	}
	if !lp.Standard {
		u.Module = append(u.Module, pkg)
		u.collectAllows(files)
	}
	return nil
}

// check type-checks one package against the packages loaded so far.
// Detailed type information is recorded only where analyzers look
// (withInfo: module and fixture packages), keeping the stdlib closure
// cheap.
func (u *Universe) check(path string, files []*ast.File, withInfo bool) (*types.Package, *types.Info, error) {
	conf := types.Config{
		Importer:    u,
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
		FakeImportC: true,
	}
	var info *types.Info
	if withInfo {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
	}
	tpkg, err := conf.Check(path, u.Fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return tpkg, info, nil
}

// Import implements types.Importer over the already-loaded universe.
func (u *Universe) Import(path string) (*types.Package, error) {
	if p, ok := u.Packages[path]; ok {
		return p.Types, nil
	}
	return nil, fmt.Errorf("lint: package %q not in loaded universe", path)
}

// LoadFixture parses and type-checks a directory of Go files as an
// extra package under the given synthetic import path (which analyzers
// see as Pass.Pkg.PkgPath, so tests can place fixtures "inside"
// internal/ or internal/exec). The fixture may import anything in the
// universe, including this module's own packages.
func (u *Universe) LoadFixture(dir, pkgPath string) (*Package, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		return nil, fmt.Errorf("lint: no fixture files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, perr := parser.ParseFile(u.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, fmt.Errorf("lint: parsing fixture %s: %v", name, perr)
		}
		files = append(files, f)
	}
	tpkg, info, err := u.check(pkgPath, files, true)
	if err != nil {
		return nil, err
	}
	pkg := &Package{PkgPath: pkgPath, Dir: dir, Files: files, Types: tpkg, Info: info}
	u.collectAllows(files)
	u.collectFactsFor(pkg)
	return pkg, nil
}

// Default importer fallback (unused; kept to pin the importer package
// so the loader can later delegate exotic paths to the toolchain).
var _ = importer.Default
