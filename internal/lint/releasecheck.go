package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ReleaseCheck proves, lostcancel-style, that every successful
// admission acquisition is paired with exactly one release on every
// path out of the acquiring function:
//
//   - admission.Gate.Acquire(ctx, session, n) — on success the session
//     holds n bytes; the pairing Release(session, n) must run on every
//     continuation, or be registered in a defer. The gate panics on a
//     double release, so a lost one is pure budget leakage: the gate
//     over-admits forever after.
//   - cache.Manager.BeginPut(uri) — the returned Pending holds a
//     reservation against double-inserts; every path must Commit or
//     Abort it, or later Puts for the URI are refused forever.
//   - storage.CreateSpillFile(dir, pattern) — the returned SpillFile
//     owns an on-disk temp file; every path must settle it with exactly
//     one Remove (delete) or Adopt (keep), or the file outlives its
//     owner and the spill directory fills with orphans. (The SpillFile
//     itself panics on a double settle; this analysis covers the
//     zero-settle paths the runtime cannot see.)
//
// The analysis is intraprocedural with explicit escape hatches, like
// x/tools' lostcancel: an acquisition whose handle escapes the
// function (returned, captured by a closure, passed along, aliased or
// stored in a field) transfers the obligation to the escapee and is
// not flagged; a guard of the form `if err != nil { ... }` on the
// Acquire error is understood as the failure path, where nothing is
// held. Cross-function pairings the analysis cannot see (e.g. a
// struct-recorded admission released by a teardown elsewhere) are
// annotated //lint:allow releasecheck <reason> at the call site.
var ReleaseCheck = &Analyzer{
	Name: "releasecheck",
	Doc:  "flags admission.Acquire/cache.BeginPut without a Release/Commit/Abort on every path",
	Run:  runReleaseCheck,
}

const (
	admissionPkgSuffix = "internal/admission"
	cachePkgSuffix     = "internal/cache"
	storagePkgSuffix   = "internal/storage"
)

type acquireKind int

const (
	acqGate    acquireKind = iota // Gate.Acquire: release via Gate.Release
	acqPending                    // Manager.BeginPut: release via Pending.Commit/Abort
	acqSpill                      // storage.CreateSpillFile: settle via SpillFile.Remove/Adopt
)

func (k acquireKind) String() string {
	switch k {
	case acqGate:
		return "admission.Acquire"
	case acqSpill:
		return "storage.CreateSpillFile"
	}
	return "cache.BeginPut"
}

func runReleaseCheck(pass *Pass) {
	if pkgPathHasSuffix(pass.Pkg.Types, admissionPkgSuffix) ||
		pkgPathHasSuffix(pass.Pkg.Types, cachePkgSuffix) ||
		pkgPathHasSuffix(pass.Pkg.Types, storagePkgSuffix) {
		return // the defining packages manage their own accounting
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkReleaseFunc(pass, n.Body)
				}
				return false
			}
			return true
		})
	}
}

// checkReleaseFunc analyzes one function body and, separately, each
// function literal nested in it (a closure that acquires is its own
// analysis unit; the enclosing function's statements never run
// "after" the closure's).
func checkReleaseFunc(pass *Pass, body *ast.BlockStmt) {
	var nested []*ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			nested = append(nested, fl.Body)
			return false
		}
		return true
	})
	for _, acq := range findAcquires(pass, body) {
		(&releaseScan{pass: pass, acq: acq}).check(body)
	}
	for _, nb := range nested {
		checkReleaseFunc(pass, nb)
	}
}

// acquire is one tracked acquisition site.
type acquire struct {
	kind   acquireKind
	call   *ast.CallExpr
	errObj types.Object // Acquire's/CreateSpillFile's error variable, when bound
	handle types.Object // BeginPut's Pending / CreateSpillFile's SpillFile variable, when bound
}

// findAcquires locates tracked calls directly in body (not in nested
// function literals).
func findAcquires(pass *Pass, body *ast.BlockStmt) []*acquire {
	var out []*acquire
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeOf(pass.Pkg.Info, call)
		switch {
		case methodOn(obj, admissionPkgSuffix, "Gate", "Acquire"):
			out = append(out, &acquire{kind: acqGate, call: call})
		case methodOn(obj, cachePkgSuffix, "Manager", "BeginPut"):
			out = append(out, &acquire{kind: acqPending, call: call})
		case funcIn(obj, storagePkgSuffix, "CreateSpillFile"):
			out = append(out, &acquire{kind: acqSpill, call: call})
		}
		return true
	})
	return out
}

// relState is the abstract state along one path after the acquisition.
type relState struct {
	released bool // a pairing release ran on this path
	deferred bool // a defer holding the release is registered
}

func (st relState) ok() bool { return st.released || st.deferred }

type releaseScan struct {
	pass     *Pass
	acq      *acquire
	reported bool
}

// check binds the acquisition's variables, applies the escape hatches,
// and walks every continuation from the acquiring statement to the
// function's exits.
func (s *releaseScan) check(body *ast.BlockStmt) {
	// Escape: `return g.Acquire(...)` is the wrapper form; the caller
	// owns the release.
	if returnsCall(body, s.acq.call) {
		return
	}
	s.bindVars(body)
	if s.acq.kind == acqPending || s.acq.kind == acqSpill {
		if s.handleDiscarded(body) {
			if s.acq.kind == acqPending {
				s.pass.Reportf(s.acq.call.Pos(), "result of cache.BeginPut is discarded; it must be Commit()ed or Abort()ed")
			} else {
				s.pass.Reportf(s.acq.call.Pos(), "result of storage.CreateSpillFile is discarded; it must be Remove()d or Adopt()ed")
			}
			return
		}
		if s.acq.handle != nil && s.handleEscapes(body) {
			return // obligation transferred to the escapee
		}
	}
	chains, ok := remainders(body.List, s.acq.call)
	if !ok {
		return
	}
	st := relState{}
	terminated := false
	for _, list := range chains {
		st, terminated = s.scanList(list, st)
		if terminated {
			break
		}
	}
	if !terminated {
		s.exitCheck(st, body.End())
	}
}

// bindVars resolves `err := g.Acquire(...)` / `p := m.BeginPut(...)` /
// `sf, err := storage.CreateSpillFile(...)` binding forms, including
// the if-init form.
func (s *releaseScan) bindVars(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || ast.Unparen(as.Rhs[0]) != s.acq.call {
			return true
		}
		bind := func(lhs ast.Expr) types.Object {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				return nil
			}
			if obj := s.pass.Pkg.Info.Defs[id]; obj != nil {
				return obj
			}
			return s.pass.Pkg.Info.Uses[id]
		}
		switch {
		case len(as.Lhs) == 1:
			if s.acq.kind == acqGate {
				s.acq.errObj = bind(as.Lhs[0])
			} else {
				s.acq.handle = bind(as.Lhs[0])
			}
		case len(as.Lhs) == 2 && s.acq.kind == acqSpill:
			// Two-value form: the handle and the error.
			s.acq.handle = bind(as.Lhs[0])
			s.acq.errObj = bind(as.Lhs[1])
		}
		return false
	})
}

// handleDiscarded reports a BeginPut or CreateSpillFile whose handle is
// dropped on the floor (expression statement or blank assignment,
// including the two-value `_, err :=` form).
func (s *releaseScan) handleDiscarded(body *ast.BlockStmt) bool {
	discarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if ast.Unparen(n.X) == s.acq.call {
				discarded = true
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 || ast.Unparen(n.Rhs[0]) != s.acq.call || len(n.Lhs) == 0 {
				return true
			}
			if id, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident); ok && id.Name == "_" {
				discarded = true
			}
		}
		return true
	})
	return discarded
}

// handleEscapes reports whether the Pending handle leaves the
// function's sight: captured by a closure, passed as an argument,
// returned, aliased to another variable, or stored into a field or
// composite literal.
func (s *releaseScan) handleEscapes(body *ast.BlockStmt) bool {
	uses := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(nn ast.Node) bool {
			if id, ok := nn.(*ast.Ident); ok && s.pass.Pkg.Info.Uses[id] == s.acq.handle {
				found = true
			}
			return true
		})
		return found
	}
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if uses(n) {
				escaped = true
			}
			return false
		case *ast.CallExpr:
			for _, a := range n.Args {
				if id, ok := ast.Unparen(a).(*ast.Ident); ok && s.pass.Pkg.Info.Uses[id] == s.acq.handle {
					escaped = true
				}
			}
		case *ast.ReturnStmt:
			if uses(n) {
				escaped = true
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && s.pass.Pkg.Info.Uses[id] == s.acq.handle {
					escaped = true
				}
			}
		case *ast.KeyValueExpr:
			if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok && s.pass.Pkg.Info.Uses[id] == s.acq.handle {
				escaped = true
			}
		}
		return true
	})
	return escaped
}

// remainders returns the statement lists that execute after the
// statement containing the call completes, innermost first. A call in
// an if-statement's init positions the continuation after the whole
// if, which is exactly the `if err := Acquire(); err != nil` idiom's
// success path.
func remainders(stmts []ast.Stmt, call *ast.CallExpr) ([][]ast.Stmt, bool) {
	for i, st := range stmts {
		if !nodeContains(st, call) {
			continue
		}
		for _, child := range childLists(st) {
			if listContains(child, call) {
				rem, ok := remainders(child, call)
				if !ok {
					return nil, false
				}
				return append(rem, stmts[i+1:]), true
			}
		}
		return [][]ast.Stmt{stmts[i+1:]}, true
	}
	return nil, false
}

func nodeContains(n ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(n, func(nn ast.Node) bool {
		if nn == target {
			found = true
		}
		return !found
	})
	return found
}

func listContains(stmts []ast.Stmt, target ast.Node) bool {
	for _, st := range stmts {
		if nodeContains(st, target) {
			return true
		}
	}
	return false
}

// childLists enumerates the nested statement lists of one statement.
func childLists(st ast.Stmt) [][]ast.Stmt {
	switch st := st.(type) {
	case *ast.BlockStmt:
		return [][]ast.Stmt{st.List}
	case *ast.IfStmt:
		out := [][]ast.Stmt{st.Body.List}
		if st.Else != nil {
			out = append(out, []ast.Stmt{st.Else})
		}
		return out
	case *ast.ForStmt:
		return [][]ast.Stmt{st.Body.List}
	case *ast.RangeStmt:
		return [][]ast.Stmt{st.Body.List}
	case *ast.SwitchStmt:
		return clauseLists(st.Body)
	case *ast.TypeSwitchStmt:
		return clauseLists(st.Body)
	case *ast.SelectStmt:
		return clauseLists(st.Body)
	case *ast.LabeledStmt:
		return childLists(st.Stmt)
	}
	return nil
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause: // switch / type switch
			if c.List == nil {
				return true
			}
		case *ast.CommClause: // select
			if c.Comm == nil {
				return true
			}
		}
	}
	return false
}

func clauseLists(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			out = append(out, c.Body)
		case *ast.CommClause:
			out = append(out, c.Body)
		}
	}
	return out
}

// scanList walks one statement list, threading the release state, and
// reports exits (returns, panics, end of function) reached while the
// acquisition may still be held.
func (s *releaseScan) scanList(stmts []ast.Stmt, st relState) (relState, bool) {
	for _, stmt := range stmts {
		var terminated bool
		st, terminated = s.scanStmt(stmt, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (s *releaseScan) scanStmt(stmt ast.Stmt, st relState) (relState, bool) {
	switch stmt := stmt.(type) {
	case *ast.ReturnStmt:
		s.exitCheck(st, stmt.Pos())
		return st, true
	case *ast.BranchStmt:
		// break/continue/goto leave this list; the loop re-entry is not
		// modeled (conservatively treated as a non-exit).
		return st, true
	case *ast.DeferStmt:
		if spawnedCallReleases(s, stmt.Call) {
			st.deferred = true
		}
		return st, false
	case *ast.GoStmt:
		// A release delegated to a goroutine is out of order-of-execution
		// scope; accept it rather than second-guess the handoff.
		if spawnedCallReleases(s, stmt.Call) {
			st.released = true
		}
		return st, false
	case *ast.IfStmt:
		return s.scanIf(stmt, st)
	case *ast.BlockStmt:
		return s.scanList(stmt.List, st)
	case *ast.LabeledStmt:
		return s.scanStmt(stmt.Stmt, st)
	case *ast.ForStmt:
		bodySt, _ := s.scanList(stmt.Body.List, st)
		return join(st, bodySt), false
	case *ast.RangeStmt:
		bodySt, _ := s.scanList(stmt.Body.List, st)
		return join(st, bodySt), false
	case *ast.SwitchStmt:
		return s.scanClauses(stmt.Body, hasDefaultClause(stmt.Body), st)
	case *ast.TypeSwitchStmt:
		return s.scanClauses(stmt.Body, hasDefaultClause(stmt.Body), st)
	case *ast.SelectStmt:
		return s.scanClauses(stmt.Body, true, st)
	case *ast.ExprStmt:
		if isPanicCall(stmt.X) {
			// A panic exits the function with only defers running.
			if !st.deferred && !st.released {
				s.reportExit(stmt.Pos(), "panics")
			}
			return st, true
		}
		if nodeReleases(s, stmt) {
			st.released = true
		}
		return st, false
	default:
		if nodeReleases(s, stmt) {
			st.released = true
		}
		return st, false
	}
}

// scanIf understands the error-guard idiom on the acquisition's error:
// the `err != nil` branch is the failure path, where nothing is held.
func (s *releaseScan) scanIf(stmt *ast.IfStmt, st relState) (relState, bool) {
	if s.acq.kind == acqGate || s.acq.kind == acqSpill {
		switch guardKind(s, stmt.Cond) {
		case guardFailure: // if err != nil { ... }: skip the failure body
			if stmt.Else != nil {
				return s.scanStmt(stmt.Else, st)
			}
			return st, false
		case guardSuccess: // if err == nil { ... }: the success path is the body
			s.scanList(stmt.Body.List, st)
			// Whatever follows the if runs only on the failure path (or
			// after a released success body); the obligation is settled.
			st.released = true
			return st, false
		}
	}
	bodySt, bodyTerm := s.scanList(stmt.Body.List, st)
	elseSt, elseTerm := st, false
	if stmt.Else != nil {
		elseSt, elseTerm = s.scanStmt(stmt.Else, st)
	}
	switch {
	case bodyTerm && elseTerm:
		return st, true
	case bodyTerm:
		return elseSt, false
	case elseTerm:
		return bodySt, false
	default:
		return join(bodySt, elseSt), false
	}
}

func (s *releaseScan) scanClauses(body *ast.BlockStmt, exhaustive bool, st relState) (relState, bool) {
	merged := relState{released: true, deferred: true}
	allTerm := true
	any := false
	for _, list := range clauseLists(body) {
		any = true
		cSt, cTerm := s.scanList(list, st)
		if !cTerm {
			allTerm = false
			merged = join(merged, cSt)
		}
	}
	if !any {
		return st, false
	}
	if allTerm && exhaustive {
		return st, true
	}
	if !exhaustive {
		merged = join(merged, st)
	}
	return merged, false
}

func join(a, b relState) relState {
	return relState{released: a.released && b.released, deferred: a.deferred && b.deferred}
}

// guard classification for `if <cond>` over the acquisition error.
type guard int

const (
	guardNone guard = iota
	guardFailure
	guardSuccess
)

func guardKind(s *releaseScan, cond ast.Expr) guard {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return guardNone
	}
	matches := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if e == s.acq.call {
			return true
		}
		id, ok := e.(*ast.Ident)
		return ok && s.acq.errObj != nil && s.pass.Pkg.Info.Uses[id] == s.acq.errObj
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	var hit bool
	switch {
	case matches(be.X) && isNil(be.Y), matches(be.Y) && isNil(be.X):
		hit = true
	}
	if !hit {
		return guardNone
	}
	switch be.Op {
	case token.NEQ:
		return guardFailure
	case token.EQL:
		return guardSuccess
	}
	return guardNone
}

// callReleases reports whether the call itself is the pairing release.
func callReleases(s *releaseScan, call *ast.CallExpr) bool {
	obj := calleeOf(s.pass.Pkg.Info, call)
	switch s.acq.kind {
	case acqGate:
		return methodOn(obj, admissionPkgSuffix, "Gate", "Release")
	case acqSpill:
		return methodOn(obj, storagePkgSuffix, "SpillFile", "Remove") ||
			methodOn(obj, storagePkgSuffix, "SpillFile", "Adopt")
	}
	return methodOn(obj, cachePkgSuffix, "Pending", "Commit") ||
		methodOn(obj, cachePkgSuffix, "Pending", "Abort")
}

// spawnedCallReleases reports whether a deferred or go'd call performs
// the pairing release: the call itself, or anywhere in the body of the
// function literal it invokes.
func spawnedCallReleases(s *releaseScan, call *ast.CallExpr) bool {
	if callReleases(s, call) {
		return true
	}
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		found := false
		ast.Inspect(fl.Body, func(nn ast.Node) bool {
			if c, ok := nn.(*ast.CallExpr); ok && callReleases(s, c) {
				found = true
			}
			return !found
		})
		return found
	}
	return false
}

// nodeReleases reports whether a pairing release happens anywhere in
// the node, excluding nested function literals (those run at their
// call sites, which scanStmt models separately for defer/go).
func nodeReleases(s *releaseScan, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(nn ast.Node) bool {
		if _, ok := nn.(*ast.FuncLit); ok {
			return false
		}
		if c, ok := nn.(*ast.CallExpr); ok && callReleases(s, c) {
			found = true
		}
		return !found
	})
	return found
}

func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// returnsCall reports the wrapper form `return g.Acquire(...)`.
func returnsCall(body *ast.BlockStmt, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, r := range ret.Results {
				if ast.Unparen(r) == call {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func (s *releaseScan) exitCheck(st relState, at token.Pos) {
	if !st.ok() {
		s.reportExit(at, "returns")
	}
}

func (s *releaseScan) reportExit(at token.Pos, how string) {
	if s.reported {
		return
	}
	s.reported = true
	exit := s.pass.Universe.Fset.Position(at)
	s.pass.Reportf(s.acq.call.Pos(),
		"%s is not released on every path: the function %s at line %d without %s",
		s.acq.kind, how, exit.Line, s.releaseName())
}

func (s *releaseScan) releaseName() string {
	switch s.acq.kind {
	case acqGate:
		return "Release (or a defer holding it)"
	case acqSpill:
		return "Remove or Adopt (or a defer holding it)"
	}
	return "Commit or Abort (or a defer holding it)"
}
