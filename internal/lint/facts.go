package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Cross-package facts. The analyzers are mostly intraprocedural, but
// cowcheck needs one modular fact to catch a read-only view handed to
// a function that writes its parameter: for every function in the
// module, which slice parameters does the body write through? The
// universe computes the fact once after loading; passes consult it via
// ParamWrites.

// collectFacts computes facts for every module package.
func (u *Universe) collectFacts() {
	for _, pkg := range u.Module {
		u.collectFactsFor(pkg)
	}
}

// collectFactsFor records the per-function facts for one package:
// which slice parameters each body writes through (cowcheck), the
// direct blocking operations, mutex acquisitions, and module callees
// behind the mayblock and lock-set facts (lockcheck), and every write
// to a Stats-struct field (statcheck's dead-counter rule).
func (u *Universe) collectFactsFor(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				u.paramWriteFact(pkg, fd)
				u.funcFactFor(pkg, fd)
			}
		}
	}
	u.statsWriteFacts(pkg)
}

func (u *Universe) paramWriteFact(pkg *Package, fd *ast.FuncDecl) {
	obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	paramObj := make(map[types.Object]int)
	for i := 0; i < params.Len(); i++ {
		if _, isSlice := params.At(i).Type().Underlying().(*types.Slice); isSlice {
			paramObj[params.At(i)] = i
		}
	}
	if len(paramObj) == 0 {
		return
	}
	writes := make([]bool, params.Len())
	mark := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if i, ok := paramObj[pkg.Info.Uses[id]]; ok {
				writes[i] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					mark(ix.X)
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
				mark(ix.X)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) > 0 {
				switch id.Name {
				case "copy":
					mark(n.Args[0]) // copy writes its destination
				case "append":
					mark(n.Args[0]) // append may write the shared tail in place
				}
			}
		}
		return true
	})
	any := false
	for _, w := range writes {
		any = any || w
	}
	if any {
		u.paramWrites[obj] = writes
	}
}

// ParamWrites reports which parameters of fn the module's own
// definition writes through (nil when none, or fn is outside the
// module).
func (u *Universe) ParamWrites(fn *types.Func) []bool {
	return u.paramWrites[fn]
}

// --- shared type-matching helpers ---

// pkgPathHasSuffix reports whether the object's package import path
// ends with suffix — analyzers match the engine's packages by suffix so
// fixture packages loaded under synthetic paths exercise the same code.
func pkgPathHasSuffix(pkg *types.Package, suffix string) bool {
	return pkg != nil && (pkg.Path() == suffix || strings.HasSuffix(pkg.Path(), "/"+suffix))
}

// methodOn reports whether obj is a method with the given name whose
// receiver's named type is typeName declared in a package whose path
// ends with pkgSuffix.
func methodOn(obj types.Object, pkgSuffix, typeName, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != typeName {
		return false
	}
	return pkgPathHasSuffix(named.Obj().Pkg(), pkgSuffix)
}

// funcIn reports whether obj is the package-level function with the
// given name declared in a package whose path ends with pkgSuffix.
func funcIn(obj types.Object, pkgSuffix, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return pkgPathHasSuffix(fn.Pkg(), pkgSuffix)
}

// calleeOf resolves the called function or method object of a call.
// Explicit generic instantiations (f[T](...)) resolve to the generic
// declaration's object.
func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	fun := ast.Unparen(call.Fun)
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel] // package-qualified call
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Context" && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "context"
}
