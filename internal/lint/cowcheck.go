package lint

import (
	"go/ast"
	"go/types"
)

// CowCheck enforces the copy-on-write read contract of the raw vector
// accessors. Vector.Bools / Int64s / Float64s / Strings return the
// backing slice without materializing shared storage: they are
// read-only views, and a write through one mutates every handle
// sharing the storage — a cache entry, a flight replay buffer, another
// query's result — as a silent data race. The analyzer flags, inside
// one function:
//
//   - element writes through an accessor result or a variable derived
//     from one (xs[i] = v, xs[i]++, xs[i] += v)
//   - append(view, ...) and copy(view, ...) — both may write the
//     shared backing array in place
//   - passing a view to a function whose definition writes the
//     corresponding parameter (module-wide fact; plus the handful of
//     stdlib sorters)
//   - a view escaping into a struct field, where its read-only-ness is
//     no longer visible to readers of the field
//
// The fix is Set, Permute or the Mutable* accessors, which materialize
// a private copy exactly when the storage is shared. The vector
// package itself, whose methods manage the share records, is exempt.
var CowCheck = &Analyzer{
	Name: "cowcheck",
	Doc:  "flags writes through the read-only vector accessors (Bools/Int64s/Float64s/Strings)",
	Run:  runCowCheck,
}

const vectorPkgSuffix = "internal/vector"

var cowAccessors = map[string]bool{
	"Bools": true, "Int64s": true, "Float64s": true, "Strings": true,
}

// stdlibWriters names stdlib functions that write a slice argument:
// parameter index -> writes. Only the sorters the engine could
// plausibly reach for are listed.
var stdlibWriters = map[string][]bool{
	"sort.Ints": {true}, "sort.Float64s": {true}, "sort.Strings": {true},
	"sort.Slice": {true, false}, "sort.SliceStable": {true, false},
	"slices.Sort": {true}, "slices.SortFunc": {true, false}, "slices.Reverse": {true},
}

func runCowCheck(pass *Pass) {
	if pkgPathHasSuffix(pass.Pkg.Types, vectorPkgSuffix) {
		return // the accessor package manages its own storage
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkCowFunc(pass, n.Body)
				}
				return false
			case *ast.FuncLit:
				// Top-level function literals (package var initializers).
				checkCowFunc(pass, n.Body)
				return false
			}
			return true
		})
	}
}

// cowTaint tracks, within one function, which local variables hold
// read-only accessor views.
type cowTaint struct {
	pass    *Pass
	tainted map[types.Object]bool
}

// checkCowFunc runs the taint pass over one function body, including
// its nested function literals (their bodies share the enclosing
// scope, so one taint set covers them).
func checkCowFunc(pass *Pass, body *ast.BlockStmt) {
	t := &cowTaint{pass: pass, tainted: make(map[types.Object]bool)}
	// Taint propagation to a fixed point: views flow through plain
	// assignments and re-slicings before the check pass looks for writes.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				if !t.isView(rhs) {
					continue
				}
				if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
					obj := t.obj(id)
					if obj != nil && !t.tainted[obj] {
						t.tainted[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && t.isView(ix.X) {
					t.pass.Reportf(ix.Pos(), "write through read-only vector view; use Set or the Mutable* accessors")
				}
			}
			// A view on the RHS flowing into a struct field escapes the
			// function's view-ness tracking entirely.
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) && t.isView(rhs) && isFieldExpr(t.pass, n.Lhs[i]) {
					t.pass.Reportf(rhs.Pos(), "read-only vector view escapes into a struct field; store a Share or a copy")
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok && t.isView(ix.X) {
				t.pass.Reportf(ix.Pos(), "write through read-only vector view; use Set or the Mutable* accessors")
			}
		case *ast.CallExpr:
			t.checkCall(n)
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if t.isView(v) && isStructLit(t.pass, n) {
					t.pass.Reportf(v.Pos(), "read-only vector view escapes into a struct field; store a Share or a copy")
				}
			}
		}
		return true
	})
}

// checkCall flags builtin writes and calls into functions whose
// definitions write the receiving parameter.
func (t *cowTaint) checkCall(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && len(call.Args) > 0 {
		switch id.Name {
		case "append":
			if t.isView(call.Args[0]) {
				t.pass.Reportf(call.Pos(), "append to read-only vector view may write shared storage; copy or use Mutable* first")
				return
			}
		case "copy":
			if t.isView(call.Args[0]) {
				t.pass.Reportf(call.Pos(), "copy into read-only vector view; use the Mutable* accessors")
				return
			}
		}
	}
	obj := calleeOf(t.pass.Pkg.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	writes := t.pass.Universe.ParamWrites(fn)
	if writes == nil && fn.Pkg() != nil {
		writes = stdlibWriters[fn.Pkg().Path()+"."+fn.Name()]
	}
	if writes == nil {
		return
	}
	for i, arg := range call.Args {
		if i < len(writes) && writes[i] && t.isView(arg) {
			t.pass.Reportf(arg.Pos(), "read-only vector view passed to %s, which writes it", fn.Name())
		}
	}
}

// isView reports whether e is a raw accessor call, a tainted variable,
// or a re-slicing of either.
func (t *cowTaint) isView(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		obj := calleeOf(t.pass.Pkg.Info, e)
		if fn, ok := obj.(*types.Func); ok && cowAccessors[fn.Name()] {
			return methodOn(fn, vectorPkgSuffix, "Vector", fn.Name())
		}
	case *ast.Ident:
		obj := t.obj(e)
		return obj != nil && t.tainted[obj]
	case *ast.SliceExpr:
		return t.isView(e.X)
	}
	return false
}

func (t *cowTaint) obj(id *ast.Ident) types.Object {
	info := t.pass.Pkg.Info
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// isFieldExpr reports whether e denotes a struct field (x.f with f a
// field, not a package-qualified name or method).
func isFieldExpr(pass *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := pass.Pkg.Info.Selections[sel]
	return ok && s.Kind() == types.FieldVal
}

// isStructLit reports whether the composite literal builds a struct.
func isStructLit(pass *Pass, lit *ast.CompositeLit) bool {
	tv, ok := pass.Pkg.Info.Types[lit]
	if !ok {
		return false
	}
	_, isStruct := tv.Type.Underlying().(*types.Struct)
	return isStruct
}
