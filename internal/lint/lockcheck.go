package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockCheck enforces the module's locking discipline with the same
// path analysis releasecheck uses for resource pairing:
//
//   - No mutex may be held across a blocking operation: a direct
//     channel send/receive, a range over a channel, a select without a
//     default clause, or a call that the mayblock fact classifies as
//     potentially blocking (sync.Cond.Wait, sync.WaitGroup.Wait,
//     time.Sleep, admission.Gate.Acquire, modeled disk I/O through
//     storage.DiskModel, mountsvc.Cursor.Next, and every transitive
//     module caller of one). A holder blocked on a channel or the
//     admission gate stalls every contender for the mutex — the exact
//     shape of the PR 3 flight join race and the admission-gate
//     starvation bug. Exception: sync.Cond.Wait on a condition whose
//     base is the held mutex's own base (cond and mutex fields of the
//     same struct) releases that mutex while waiting and is exempt.
//   - No mutex may be re-acquired while already held (self-deadlock).
//   - Acquisition order must be consistent module-wide: for every
//     nested acquisition (mutex B taken — directly or via a callee's
//     lock set — while A is held) the analyzer records an A→B edge;
//     any edge whose reverse is reachable in the module-wide graph is
//     a potential deadlock and is reported at both acquisition sites.
//
// The analysis is intraprocedural per lock site (remainder-path walk,
// defer-aware: a deferred Unlock holds the mutex to function exit) with
// two module-wide facts stitched across functions: mayblock and the
// per-function lock set. Deliberate exceptions — e.g. the result
// cache's disk tier, which serializes spill promotion under the cache
// lock so an entry's state transition is atomic — carry
// //lint:allow lockcheck <reason> at the blocking call site.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "flags mutexes held across blocking operations, self-relocks, and inconsistent acquisition order",
	Run:  runLockCheck,
}

// mutexRef identifies one mutex as named at an acquisition site: the
// selector path gives intraprocedural identity (two sites on "f.mu"
// are the same instance), the object gives module-wide identity for
// the acquisition-order graph (the struct field Service.fmu, whichever
// instance).
type mutexRef struct {
	path    string       // receiver chain as written: "s.fmu", "mu"
	obj     types.Object // the mutex variable (struct field or local)
	display string       // diagnostic name: "Service.fmu", "mu"
}

// base returns the path with the final component stripped: the owning
// value's path ("f" for "f.mu"), used for the cond.Wait exemption.
func (r mutexRef) base() string {
	if i := strings.LastIndex(r.path, "."); i >= 0 {
		return r.path[:i]
	}
	return ""
}

// lockCall matches a call to (*sync.Mutex or *sync.RWMutex)
// Lock/Unlock/RLock/RUnlock and resolves the mutex it targets. ok is
// false when the receiver chain is not a trackable selector path.
func lockCall(info *types.Info, call *ast.CallExpr) (mutexRef, string, bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return mutexRef{}, "", false
	}
	obj := calleeOf(info, call)
	var op string
	for _, name := range [...]string{"Lock", "Unlock", "RLock", "RUnlock"} {
		if methodOn(obj, "sync", "Mutex", name) || methodOn(obj, "sync", "RWMutex", name) {
			op = name
			break
		}
	}
	if op == "" {
		return mutexRef{}, "", false
	}
	ref, ok := mutexAt(info, sel.X)
	return ref, op, ok
}

// mutexAt resolves a pure selector chain (idents and field selections
// only) to a mutexRef. Chains through calls or index expressions are
// not trackable.
func mutexAt(info *types.Info, e ast.Expr) (mutexRef, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return mutexRef{}, false
		}
		return mutexRef{path: e.Name, obj: obj, display: e.Name}, true
	case *ast.SelectorExpr:
		b, ok := mutexAt(info, e.X)
		if !ok {
			return mutexRef{}, false
		}
		var obj types.Object
		if sel, ok := info.Selections[e]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[e.Sel]
		}
		if obj == nil {
			return mutexRef{}, false
		}
		ref := mutexRef{path: b.path + "." + e.Sel.Name, obj: obj, display: e.Sel.Name}
		if sel, ok := info.Selections[e]; ok {
			rt := sel.Recv()
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			if named, ok := rt.(*types.Named); ok {
				ref.display = named.Obj().Name() + "." + e.Sel.Name
			}
		}
		return ref, true
	case *ast.StarExpr:
		return mutexAt(info, e.X)
	}
	return mutexRef{}, false
}

// --- the module-wide acquisition-order graph ---

type lockEdge struct {
	pos      token.Pos
	from, to string // display names, frozen at first sight
}

type lockGraph struct {
	edges map[types.Object]map[types.Object]lockEdge
}

func newLockGraph() *lockGraph {
	return &lockGraph{edges: make(map[types.Object]map[types.Object]lockEdge)}
}

func (g *lockGraph) add(from, to types.Object, e lockEdge) {
	m := g.edges[from]
	if m == nil {
		m = make(map[types.Object]lockEdge)
		g.edges[from] = m
	}
	if old, ok := m[to]; !ok || e.pos < old.pos {
		m[to] = e
	}
}

// neighborsSorted returns from's outgoing edges across both graphs in
// deterministic (position) order.
func neighborsSorted(a, b *lockGraph, from types.Object) []struct {
	to types.Object
	e  lockEdge
} {
	var out []struct {
		to types.Object
		e  lockEdge
	}
	seen := make(map[types.Object]bool)
	for _, g := range []*lockGraph{a, b} {
		if g == nil {
			continue
		}
		for to, e := range g.edges[from] {
			if seen[to] {
				continue
			}
			seen[to] = true
			out = append(out, struct {
				to types.Object
				e  lockEdge
			}{to, e})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].e.pos < out[j].e.pos })
	return out
}

// findPath reports whether to is reachable from `from` over the union
// of the two graphs, returning the first edge of a deterministic
// witness path.
func findPath(a, b *lockGraph, from, to types.Object) (lockEdge, bool) {
	visited := make(map[types.Object]bool)
	var dfs func(x types.Object) (lockEdge, bool)
	dfs = func(x types.Object) (lockEdge, bool) {
		if visited[x] {
			return lockEdge{}, false
		}
		visited[x] = true
		for _, n := range neighborsSorted(a, b, x) {
			if n.to == to {
				return n.e, true
			}
			if e, ok := dfs(n.to); ok {
				if x == from {
					return n.e, true
				}
				return e, true
			}
		}
		return lockEdge{}, false
	}
	return dfs(from)
}

// moduleLockGraph builds (once) the acquisition-order graph over every
// module package.
func (u *Universe) moduleLockGraph() *lockGraph {
	if u.lockGraph != nil {
		return u.lockGraph
	}
	g := newLockGraph()
	u.lockGraph = g // set first: the walk below must not recurse into itself
	for _, pkg := range u.Module {
		lockWalkPackage(u, nil, pkg, g)
	}
	return g
}

// --- the analyzer ---

func runLockCheck(pass *Pass) {
	u := pass.Universe
	module := u.moduleLockGraph()
	local := newLockGraph()
	lockWalkPackage(u, pass, pass.Pkg, local)
	// Order check: a local edge whose reverse is reachable module-wide
	// (or within this package, for fixtures outside the module) is a
	// potential deadlock.
	for from, tos := range local.edges {
		for to, e := range tos {
			if from == to {
				continue // same field on distinct instances; ordering is aliasing-dependent
			}
			if w, ok := findPath(module, local, to, from); ok {
				pass.Reportf(e.pos,
					"lock order inversion: %s is acquired while %s is held, but the opposite order exists at %s",
					e.to, e.from, u.Fset.Position(w.pos))
			}
		}
	}
}

// lockWalkPackage runs the lock-site walk over every analysis unit
// (function body or function literal) in pkg. With a nil pass it only
// collects acquisition-order edges into g.
func lockWalkPackage(u *Universe, pass *Pass, pkg *Package, g *lockGraph) {
	seen := make(map[string]bool)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lockWalkUnits(u, pass, pkg, fd.Body, g, seen)
		}
	}
}

func lockWalkUnits(u *Universe, pass *Pass, pkg *Package, body *ast.BlockStmt, g *lockGraph, seen map[string]bool) {
	var nested []*ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			nested = append(nested, fl.Body)
			return false
		}
		return true
	})
	lockWalkUnit(u, pass, pkg, body, g, nil, seen)
	for _, nb := range nested {
		lockWalkUnits(u, pass, pkg, nb, g, seen)
	}
}

// lockWalkUnit scans every Lock/RLock site directly in the unit. With
// mark non-nil it instead records which statements execute while some
// mutex may be held (statcheck's guarded-region query).
func lockWalkUnit(u *Universe, pass *Pass, pkg *Package, body *ast.BlockStmt, g *lockGraph, mark map[ast.Stmt]bool, seen map[string]bool) {
	var sites []*ast.CallExpr
	var refs []mutexRef
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if ref, op, ok := lockCall(pkg.Info, call); ok && (op == "Lock" || op == "RLock") {
			sites = append(sites, call)
			refs = append(refs, ref)
		}
		return true
	})
	for i, call := range sites {
		u.noteMutexName(refs[i])
		chains, ok := remainders(body.List, call)
		if !ok {
			continue
		}
		s := &lockScan{u: u, info: pkg.Info, pass: pass, ref: refs[i], g: g, mark: mark, seen: seen}
		held := true
		for _, list := range chains {
			var term bool
			held, term = s.scanList(list, held)
			if !held || term {
				break
			}
		}
	}
}

// noteMutexName freezes a display name for a mutex object the first
// time it is seen at an acquisition site, so lock-set-derived edges
// (where no source expression is at hand) still print readable names.
func (u *Universe) noteMutexName(ref mutexRef) {
	if _, ok := u.mutexNames[ref.obj]; !ok {
		u.mutexNames[ref.obj] = ref.display
	}
}

func (u *Universe) mutexName(obj types.Object) string {
	if s, ok := u.mutexNames[obj]; ok {
		return s
	}
	return obj.Name()
}

// lockScan walks the continuation of one acquisition site, threading
// the held state through branches the way releasecheck's scan does.
type lockScan struct {
	u    *Universe
	info *types.Info
	pass *Pass             // nil: collect-only
	ref  mutexRef          // the mutex this scan tracks
	g    *lockGraph        // nil: mark-only
	mark map[ast.Stmt]bool // non-nil: record held statements
	seen map[string]bool   // cross-site diagnostic dedup (pos+message)
}

func (s *lockScan) violate(pos token.Pos, format string, args ...any) {
	if s.pass == nil {
		return
	}
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d:%s", pos, msg)
	if s.seen[key] {
		return
	}
	s.seen[key] = true
	s.pass.Reportf(pos, "mutex %s is held across %s", s.ref.display, msg)
}

func (s *lockScan) scanList(stmts []ast.Stmt, held bool) (bool, bool) {
	for _, stmt := range stmts {
		var term bool
		held, term = s.scanStmt(stmt, held)
		if term {
			return held, true
		}
		if !held && s.mark == nil {
			// Released: nothing further can violate this site. (In mark
			// mode other sites' regions are merged by the caller, so a
			// release just stops marking.)
			return held, false
		}
	}
	return held, false
}

func (s *lockScan) scanStmt(stmt ast.Stmt, held bool) (bool, bool) {
	if held && s.mark != nil {
		s.mark[stmt] = true
	}
	switch stmt := stmt.(type) {
	case *ast.BlockStmt:
		return s.scanList(stmt.List, held)
	case *ast.IfStmt:
		s.markInit(stmt.Init, held)
		held = s.scanNode(stmt.Init, held)
		held = s.scanNode(stmt.Cond, held)
		bHeld, bTerm := s.scanList(stmt.Body.List, held)
		eHeld, eTerm := held, false
		if stmt.Else != nil {
			eHeld, eTerm = s.scanStmt(stmt.Else, held)
		}
		switch {
		case bTerm && eTerm:
			return held, true
		case bTerm:
			return eHeld, false
		case eTerm:
			return bHeld, false
		default:
			return bHeld || eHeld, false
		}
	case *ast.ForStmt:
		s.markInit(stmt.Init, held)
		held = s.scanNode(stmt.Init, held)
		held = s.scanNode(stmt.Cond, held)
		bHeld, _ := s.scanList(stmt.Body.List, held)
		s.markInit(stmt.Post, bHeld)
		s.scanNode(stmt.Post, bHeld)
		return held || bHeld, false
	case *ast.RangeStmt:
		if held && isChanType(s.info.TypeOf(stmt.X)) {
			s.violate(stmt.Pos(), "a range over a channel")
		}
		held = s.scanNode(stmt.X, held)
		bHeld, _ := s.scanList(stmt.Body.List, held)
		return held || bHeld, false
	case *ast.SelectStmt:
		if held && !hasDefaultClause(stmt.Body) {
			s.violate(stmt.Pos(), "a select without a default clause")
		}
		return s.scanClauses(stmt.Body, held, true)
	case *ast.SwitchStmt:
		s.markInit(stmt.Init, held)
		held = s.scanNode(stmt.Init, held)
		held = s.scanNode(stmt.Tag, held)
		return s.scanClauses(stmt.Body, held, hasDefaultClause(stmt.Body))
	case *ast.TypeSwitchStmt:
		return s.scanClauses(stmt.Body, held, hasDefaultClause(stmt.Body))
	case *ast.ReturnStmt:
		s.scanNode(stmt, held)
		return held, true
	case *ast.BranchStmt:
		return held, true // leaves this list; re-entry is not modeled
	case *ast.DeferStmt:
		// A deferred Unlock keeps the mutex held to function exit, which
		// is exactly what the blocking checks must assume; deferred
		// blocking work runs after the function's own statements and is
		// out of scope.
		return held, false
	case *ast.GoStmt:
		return held, false // the goroutine does not run under our lock
	case *ast.LabeledStmt:
		return s.scanStmt(stmt.Stmt, held)
	default:
		return s.scanNode(stmt, held), false
	}
}

// markInit records init/post statements of compound statements in the
// held set (they are statements in their own right but are visited as
// expressions by scanNode).
func (s *lockScan) markInit(stmt ast.Stmt, held bool) {
	if held && s.mark != nil && stmt != nil {
		s.mark[stmt] = true
	}
}

func (s *lockScan) scanClauses(body *ast.BlockStmt, held bool, exhaustive bool) (bool, bool) {
	anyHeld, allTerm, any := false, true, false
	for _, list := range clauseLists(body) {
		any = true
		h, term := s.scanList(list, held)
		if !term {
			allTerm = false
			anyHeld = anyHeld || h
		}
	}
	if !any {
		return held, false
	}
	if allTerm && exhaustive {
		return held, true
	}
	if !exhaustive {
		anyHeld = anyHeld || held
	}
	return anyHeld, false
}

// scanNode processes the events inside one simple statement or
// expression subtree in source order: lock/unlock transitions, nested
// acquisitions (order edges), and blocking operations while held.
func (s *lockScan) scanNode(n ast.Node, held bool) bool {
	if n == nil {
		return held
	}
	ast.Inspect(n, func(nn ast.Node) bool {
		switch nn := nn.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			if held {
				s.violate(nn.Pos(), "a channel send")
			}
		case *ast.UnaryExpr:
			if nn.Op == token.ARROW && held {
				s.violate(nn.Pos(), "a channel receive")
			}
		case *ast.CallExpr:
			held = s.callEvent(nn, held)
		}
		return true
	})
	return held
}

// callEvent handles one call while scanning: release, nested
// acquisition, known blocking external, or module call (consulting the
// mayblock and lock-set facts).
func (s *lockScan) callEvent(call *ast.CallExpr, held bool) bool {
	if ref, op, ok := lockCall(s.info, call); ok {
		switch op {
		case "Unlock", "RUnlock":
			if ref.obj == s.ref.obj && ref.path == s.ref.path {
				return false
			}
		case "Lock", "RLock":
			if !held {
				return held
			}
			if ref.obj == s.ref.obj && ref.path == s.ref.path {
				if s.pass != nil {
					s.pass.Reportf(call.Pos(), "mutex %s is re-acquired while already held (self-deadlock)", s.ref.display)
				}
				return held
			}
			if s.g != nil {
				s.g.add(s.ref.obj, ref.obj, lockEdge{pos: call.Pos(), from: s.ref.display, to: ref.display})
			}
		}
		return held
	}
	callee := calleeOf(s.info, call)
	if !held {
		return held
	}
	if desc, ok := blockingCall(callee); ok {
		if s.condWaitOnOwnMutex(call, callee) {
			return held
		}
		s.violate(call.Pos(), "%s", desc)
		return held
	}
	if fn := s.u.moduleCallee(callee); fn != nil {
		if chain, blocks := s.u.MayBlock(fn); blocks {
			s.violate(call.Pos(), "a call to %s, which may block (%s)", funcDisplay(fn), chain)
		}
		if s.g != nil {
			for _, lockObj := range sortedObjs(s.u.lockSetOf(fn)) {
				if lockObj == s.ref.obj {
					continue // possibly the same instance; relocks are matched by path, not field
				}
				s.g.add(s.ref.obj, lockObj, lockEdge{pos: call.Pos(), from: s.ref.display, to: s.u.mutexName(lockObj)})
			}
		}
	}
	return held
}

// condWaitOnOwnMutex exempts f.cond.Wait() while f.mu is held: Wait
// atomically releases the condition's locker, so the paired mutex is
// not held across the wait. The pairing is recognized structurally —
// the cond and the mutex hang off the same base path.
func (s *lockScan) condWaitOnOwnMutex(call *ast.CallExpr, callee types.Object) bool {
	if !methodOn(callee, "sync", "Cond", "Wait") {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	cond, ok := mutexAt(s.info, sel.X)
	if !ok {
		return false
	}
	return cond.base() == s.ref.base()
}

func sortedObjs(set map[types.Object]bool) []types.Object {
	objs := make([]types.Object, 0, len(set))
	for o := range set {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	return objs
}

// heldStmts computes, for one analysis unit, the set of statements
// that may execute while some mutex is held — the guarded regions
// statcheck checks stats writes against.
func heldStmts(u *Universe, pkg *Package, body *ast.BlockStmt) map[ast.Stmt]bool {
	mark := make(map[ast.Stmt]bool)
	lockWalkUnit(u, nil, pkg, body, nil, mark, nil)
	return mark
}
