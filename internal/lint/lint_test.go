package lint

import (
	"fmt"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The analyzer tests follow the x/tools analysistest protocol: fixture
// packages under testdata/src/ carry `// want "regexp"` comments on the
// lines where diagnostics are expected; a test fails on any unexpected
// diagnostic and on any unmatched expectation. Fixtures import the
// engine's real packages (vector, admission, cache, mountsvc), so the
// analyzers are exercised against the real types they guard.

var (
	loadOnce sync.Once
	sharedU  *Universe
	loadErr  error
)

// universe loads the module (plus the stdlib packages fixtures import)
// once per test binary.
func universe(t *testing.T) *Universe {
	t.Helper()
	loadOnce.Do(func() {
		root, err := findModuleRoot()
		if err != nil {
			loadErr = err
			return
		}
		sharedU, loadErr = Load(root, "./...", "sort", "context", "errors")
	})
	if loadErr != nil {
		t.Fatalf("loading universe: %v", loadErr)
	}
	return sharedU
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// expectation is one parsed `// want` comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantPat = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// parseWants extracts expectations from a fixture package's comments.
// The marker may be a standalone comment or embedded after another
// (fixtures append it to //lint:allow directives under test).
func parseWants(t *testing.T, u *Universe, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				matches := wantPat.FindAllStringSubmatch(c.Text[idx+len("// want "):], -1)
				if len(matches) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range matches {
					src := m[1]
					if src == "" {
						src = m[2]
					}
					re, err := regexp.Compile(src)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, src, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// runFixture loads one fixture package under a synthetic import path,
// runs a single analyzer over it, and matches diagnostics against the
// fixture's want comments.
func runFixture(t *testing.T, az *Analyzer, fixture, pkgPath string) {
	t.Helper()
	u := universe(t)
	pkg, err := u.LoadFixture(filepath.Join("testdata", "src", fixture), pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	diags := RunPackage(u, []*Analyzer{az}, pkg)
	wants := parseWants(t, u, pkg)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.used && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestCowCheckFixture(t *testing.T) {
	runFixture(t, CowCheck, "cowfix", "fixture/internal/cowfix")
}

func TestReleaseCheckFixture(t *testing.T) {
	runFixture(t, ReleaseCheck, "releasefix", "fixture/internal/releasefix")
}

// TestSpillFixture covers releasecheck's spill-file pairing: every
// storage.CreateSpillFile must settle its handle with exactly one
// Remove or Adopt on every path, unless the handle escapes.
func TestSpillFixture(t *testing.T) {
	runFixture(t, ReleaseCheck, "spillfix", "fixture/internal/spillfix")
}

// TestStatsFixtureClean* pin the analyzers' false-positive rate on the
// statistics-free planner's idioms: statsfix mirrors the oracle's code
// shapes (read-only view scans, private copies, threaded contexts) and
// carries no want comments — any diagnostic at all fails the test.
func TestStatsFixtureCleanCow(t *testing.T) {
	runFixture(t, CowCheck, "statsfix", "fixture/internal/statsfix")
}

func TestStatsFixtureCleanCtx(t *testing.T) {
	runFixture(t, CtxCheck, "statsfix", "fixture/internal/statsfix")
}

func TestCtxCheckFixture(t *testing.T) {
	runFixture(t, CtxCheck, "ctxfix", "fixture/internal/ctxfix")
}

func TestCtxCheckExecFixture(t *testing.T) {
	// The synthetic path ends internal/exec, switching on the
	// operator-package rules (goroutine and Request-literal threading).
	runFixture(t, CtxCheck, "execfix", "fixture/internal/exec")
}

func TestLockCheckFixture(t *testing.T) {
	runFixture(t, LockCheck, "lockcheckfix", "fixture/internal/lockcheckfix")
}

func TestStatCheckFixture(t *testing.T) {
	runFixture(t, StatCheck, "statcheckfix", "fixture/internal/statcheckfix")
}

// TestLockFixtureClean* / TestStatFixtureClean* pin the concurrency
// analyzers' false-positive rate on the engine's own idioms (ticket
// handoff, cond.Wait loops, double-checked promotion, spill settle,
// callback-guarded stats, per-entry snapshot copies): the fixtures
// carry no want comments, so any diagnostic at all fails.
func TestLockFixtureCleanLock(t *testing.T) {
	runFixture(t, LockCheck, "lockfix", "fixture/internal/lockfix")
}

func TestLockFixtureCleanStat(t *testing.T) {
	runFixture(t, StatCheck, "lockfix", "fixture/internal/lockfix-stat")
}

func TestStatFixtureCleanStat(t *testing.T) {
	runFixture(t, StatCheck, "statfix", "fixture/internal/statfix")
}

func TestStatFixtureCleanLock(t *testing.T) {
	runFixture(t, LockCheck, "statfix", "fixture/internal/statfix-lock")
}

// TestMayBlockPropagatesAcrossPackages pins the transitivity of the
// module-wide mayblock fact: par.ForEachOrdered blocks directly
// (range over its results channel), so ingest's parallel loaders —
// which call it from another package — are classified blocking too,
// while a pure function stays non-blocking.
func TestMayBlockPropagatesAcrossPackages(t *testing.T) {
	u := universe(t)
	lookup := func(pkgPath, name string) *types.Func {
		t.Helper()
		pkg, ok := u.Packages[pkgPath]
		if !ok {
			t.Fatalf("package %s not in universe", pkgPath)
		}
		fn, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
		if !ok {
			t.Fatalf("%s.%s is not a function", pkgPath, name)
		}
		return fn
	}
	if _, ok := u.MayBlock(lookup("repro/internal/par", "ForEachOrdered")); !ok {
		t.Errorf("par.ForEachOrdered should be classified as blocking")
	}
	if _, ok := u.MayBlock(lookup("repro/internal/ingest", "LoadMetadataParallel")); !ok {
		t.Errorf("ingest.LoadMetadataParallel should be classified as blocking")
	}
	if chain, ok := u.MayBlock(lookup("repro/internal/plan", "Subsumes")); ok {
		t.Errorf("plan.Subsumes should not block (chain %q)", chain)
	}
}

// TestNoStaleAllows is -checkallows in miniature: every //lint:allow
// in module files must still suppress a live diagnostic.
func TestNoStaleAllows(t *testing.T) {
	u := universe(t)
	for _, d := range CheckAllows(u, Analyzers()) {
		t.Errorf("%s", d)
	}
}

// TestRepositoryIsClean is the CI gate in miniature: the full suite
// over the whole module must be quiet. Any new violation fails here
// (and in the lint CI job) until fixed or explicitly allowed.
func TestRepositoryIsClean(t *testing.T) {
	u := universe(t)
	diags := Run(u, Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestAllowRequiresReason pins the escape hatch's contract: a bare
// //lint:allow silences nothing and is itself reported.
func TestAllowRequiresReason(t *testing.T) {
	u := universe(t)
	pkg, err := u.LoadFixture(filepath.Join("testdata", "src", "ctxfix"), "fixture/internal/ctxfix-reason")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := RunPackage(u, []*Analyzer{CtxCheck}, pkg)
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "needs a reason") {
			found = true
		}
	}
	if !found {
		t.Errorf("bare //lint:allow was not reported; diagnostics: %v", diags)
	}
}
