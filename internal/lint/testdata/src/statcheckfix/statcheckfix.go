// Package statcheckfix seeds statcheck violations: unguarded writes to
// fields of a mutex-guarded *Stats struct (including from goroutine
// bodies), snapshots that alias receiver state past the unlock, and a
// declared-but-never-updated counter — plus the allowed patterns
// (writes under the lock, Locked-suffix helpers, sync/atomic,
// callback literals, private value copies, unguarded metadata types,
// and the //lint:allow escape hatch).
package statcheckfix

import (
	"sync"
	"sync/atomic"
)

type ServerStats struct {
	Hits     int64
	Misses   int64
	Sessions map[string]int64
}

type Server struct {
	mu    sync.Mutex
	stats ServerStats
}

func (s *Server) bump() {
	s.stats.Hits++ // want `write to ServerStats.Hits outside the owning lock \(hold the mutex or use sync/atomic\)`
}

func (s *Server) bumpGuarded() {
	s.mu.Lock()
	s.stats.Hits++
	s.mu.Unlock()
}

func (s *Server) bumpDeferred() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Hits++
}

// bumpLocked runs under the caller's lock by naming convention.
func (s *Server) bumpLocked() {
	s.stats.Hits++
}

func (s *Server) bumpAtomic() {
	atomic.AddInt64(&s.stats.Misses, 1)
}

func (s *Server) spawn(done chan struct{}) {
	go func() {
		s.stats.Hits++ // want `write to ServerStats.Hits outside the owning lock`
		close(done)
	}()
}

func (s *Server) spawnGuarded(done chan struct{}) {
	go func() {
		s.mu.Lock()
		s.stats.Hits++
		s.mu.Unlock()
		close(done)
	}()
}

// update passes the stats to a callback under the lock; literals at
// call sites inherit that contract and are waived.
func (s *Server) update(f func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f()
}

func (s *Server) bumpViaCallback() {
	s.update(func() { s.stats.Hits++ }) // clean: runs under update's lock
}

func (s *Server) bumpAllowed() {
	s.stats.Hits++ //lint:allow statcheck the fixture documents the escape hatch for a single-owner phase
}

// --- snapshots ---

func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats // want `stats snapshot returns receiver-aliased ServerStats, whose map/slice fields escape the lock; copy them instead`
}

func (s *Server) StatsAliased() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := ServerStats{Hits: s.stats.Hits, Misses: s.stats.Misses}
	out.Sessions = s.stats.Sessions // want `stats snapshot aliases receiver state \(map\[string\]int64 escapes the lock\); copy it instead`
	return out
}

func (s *Server) StatsCopy() ServerStats { // clean: per-entry copy
	s.mu.Lock()
	defer s.mu.Unlock()
	out := ServerStats{Hits: s.stats.Hits, Misses: s.stats.Misses}
	out.Sessions = make(map[string]int64, len(s.stats.Sessions))
	for k, v := range s.stats.Sessions {
		out.Sessions[k] = v
	}
	return out
}

// IdleStats is guarded (reachable from Idle's mutex-owning struct) but
// its counter is never updated anywhere in the package: dead weight in
// every snapshot.
type IdleStats struct {
	Polls int64 // want `counter IdleStats.Polls is declared but never updated`
}

type Idle struct {
	mu    sync.Mutex
	stats IdleStats
}

func (i *Idle) Stats() IdleStats {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.stats
}

// FreeStats is not reachable from any mutex-owning struct: a
// single-owner metadata type (the zone-map RecordStats shape), exempt
// from the guarded-write and dead-counter rules.
type FreeStats struct {
	Rows int64
}

func bumpFree(f *FreeStats) {
	f.Rows++
}
