// Package releasefix seeds releasecheck violations: admission
// acquisitions and cache reservations leaked on some path, plus the
// allowed patterns (defers, all-paths releases, escapes, wrappers and
// the //lint:allow escape hatch).
package releasefix

import (
	"context"
	"errors"

	"repro/internal/admission"
	"repro/internal/cache"
)

func work() {}

func leakNoRelease(g *admission.Gate) error {
	if err := g.Acquire(nil, "s", 64); err != nil { // want `admission.Acquire is not released on every path`
		return err
	}
	work()
	return nil
}

func leakEarlyReturn(g *admission.Gate, fail bool) error {
	if err := g.Acquire(nil, "s", 64); err != nil { // want `admission.Acquire is not released on every path`
		return err
	}
	if fail {
		return errors.New("early exit skips the release")
	}
	g.Release("s", 64)
	return nil
}

func leakOnPanic(g *admission.Gate, n int64) {
	if err := g.Acquire(nil, "s", n); err != nil { // want `admission.Acquire is not released on every path`
		return
	}
	if n > 1<<40 {
		panic("absurd request")
	}
	g.Release("s", n)
}

func leakDiscardedError(g *admission.Gate) {
	_ = g.Acquire(nil, "s", 8) // want `admission.Acquire is not released on every path`
}

func leakPendingDiscard(m *cache.Manager) {
	m.BeginPut("file://a") // want `result of cache.BeginPut is discarded`
}

func leakPendingEarlyReturn(m *cache.Manager, fail bool) error {
	p := m.BeginPut("file://b") // want `cache.BeginPut is not released on every path`
	if fail {
		return errors.New("reservation leaked")
	}
	p.Commit(cache.FullSpan())
	return nil
}

// --- allowed patterns ---

func okDeferred(g *admission.Gate, n int64) error {
	if err := g.Acquire(nil, "s", n); err != nil {
		return err
	}
	defer g.Release("s", n)
	work()
	return nil
}

func okDeferredClosure(g *admission.Gate) error {
	if err := g.Acquire(nil, "s", 8); err != nil {
		return err
	}
	defer func() {
		work()
		g.Release("s", 8)
	}()
	work()
	return nil
}

func okBothBranches(g *admission.Gate, flag bool) error {
	if err := g.Acquire(nil, "s", 8); err != nil {
		return err
	}
	if flag {
		g.Release("s", 8)
		return nil
	}
	g.Release("s", 8)
	return nil
}

func okWrapper(ctx context.Context, g *admission.Gate) error {
	return g.Acquire(ctx, "wrapped", 8) // the caller owns the release
}

func okPendingBothPaths(m *cache.Manager, fail bool) error {
	p := m.BeginPut("file://c")
	if fail {
		p.Abort()
		return errors.New("aborted")
	}
	p.Commit(cache.FullSpan())
	return nil
}

func okPendingEscapesByReturn(m *cache.Manager) *cache.Pending {
	return m.BeginPut("file://d") // the caller owns the reservation
}

func okPendingEscapesToClosure(m *cache.Manager) func() {
	p := m.BeginPut("file://e")
	return func() { p.Abort() } // the closure owns the reservation
}

func okAllowed(g *admission.Gate) error {
	if err := g.Acquire(nil, "s", 8); err != nil { //lint:allow releasecheck a teardown elsewhere pairs this acquisition (fixture)
		return err
	}
	work()
	return nil
}
