// Package statfix pins statcheck's false-positive rate on the engine's
// own stats idioms, all deliberately clean: callback-guarded writes
// (the addMountStats shape), by-value snapshots that copy the map per
// entry (the Gate.Stats shape), and Locked-suffix helpers. Any
// diagnostic at all fails the fixture's test.
package statfix

import "sync"

type LoadStats struct {
	Batches int64
	Bytes   int64
	PerFile map[string]int64
}

type Loader struct {
	mu    sync.Mutex
	stats LoadStats
}

// withLock passes the guarded stats to a callback under the lock;
// literals at call sites inherit that contract.
func (l *Loader) withLock(f func(*LoadStats)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	f(&l.stats)
}

func (l *Loader) NoteBatch(file string, n int64) {
	l.withLock(func(st *LoadStats) {
		st.Batches++
		st.Bytes += n
		if st.PerFile == nil {
			st.PerFile = make(map[string]int64)
		}
		st.PerFile[file] += n
	})
}

func (l *Loader) resetLocked() {
	l.stats.Batches = 0
	l.stats.Bytes = 0
	l.stats.PerFile = nil
}

// Stats copies scalar fields by value and the map per entry, so
// nothing in the snapshot aliases state guarded by l.mu.
func (l *Loader) Stats() LoadStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := LoadStats{Batches: l.stats.Batches, Bytes: l.stats.Bytes}
	if len(l.stats.PerFile) > 0 {
		out.PerFile = make(map[string]int64, len(l.stats.PerFile))
		for k, v := range l.stats.PerFile {
			out.PerFile[k] = v
		}
	}
	return out
}

type SessionStats struct {
	Admitted int64
}

type Gate struct {
	mu       sync.Mutex
	sessions map[string]*SessionStats
}

func (g *Gate) Note(session string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.sessions[session]
	if st == nil {
		st = &SessionStats{}
		g.sessions[session] = st
	}
	st.Admitted++
}

// GateStats is the snapshot type: one by-value SessionStats per entry.
type GateStats struct {
	Sessions map[string]SessionStats
}

// Stats dereferences every per-session entry into the fresh map, so
// the snapshot shares nothing with the guarded table (the admission
// Gate.Stats shape).
func (g *Gate) Stats() GateStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := GateStats{Sessions: make(map[string]SessionStats, len(g.sessions))}
	for k, st := range g.sessions {
		out.Sessions[k] = *st
	}
	return out
}
