// Package statsfix is the clean-fixture counterpart to cowfix and
// ctxfix: it mirrors the code shapes of the statistics-free planner —
// read-only scans over frozen Qf batches feeding an oracle, and
// cancellation threaded from the caller into pruning — and must
// produce zero diagnostics under cowcheck and ctxcheck. It pins the
// analyzers' false-positive rate on the planner idioms: reading
// vector views without writing through them, building private state
// with plain slices, and deriving contexts instead of rooting them.
package statsfix

import (
	"context"

	"repro/internal/vector"
)

// recordCard is oracle-private state assembled from read-only views;
// no view slice escapes into it.
type recordCard struct {
	uri  string
	rows int64
	lo   int64
	hi   int64
}

// collect reads the frozen result's columns through the read-only
// accessors — index reads and range loops only — and copies the
// values (never the slices) into private records.
func collect(uris *vector.Vector, rows, lo, hi *vector.Vector) []recordCard {
	us := uris.Strings()
	rs := rows.Int64s()
	los := lo.Int64s()
	his := hi.Int64s()
	out := make([]recordCard, 0, len(us))
	for i := range us {
		out = append(out, recordCard{uri: us[i], rows: rs[i], lo: los[i], hi: his[i]})
	}
	return out
}

// totalRows sums through a view without retaining it.
func totalRows(rows *vector.Vector) int64 {
	var sum int64
	for _, r := range rows.Int64s() {
		sum += r
	}
	return sum
}

// disjoint is the span test the oracle applies per record: pure value
// reads, no mutation.
func disjoint(c recordCard, lo, hi int64) bool {
	return c.hi < lo || c.lo > hi
}

// prune walks records under the caller's context, honoring
// cancellation between files rather than severing it with a fresh
// root — the threading discipline ctxcheck enforces.
func prune(ctx context.Context, cards []recordCard, lo, hi int64) ([]recordCard, error) {
	kept := cards[:0]
	for _, c := range cards {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !disjoint(c, lo, hi) {
			kept = append(kept, c)
		}
	}
	return kept, nil
}

// estimate derives a bounded timeout from the caller's context for
// the residual-evaluation probe; deriving (not rooting) is allowed.
func estimate(ctx context.Context, cards []recordCard) (int64, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var total int64
	for _, c := range cards {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		total += c.rows
	}
	return total, nil
}

// materialize builds a fresh vector through the mutating entry points
// on a vector it owns — the CoW-sound way to produce output, as
// opposed to writing through a read-only view.
func materialize(cards []recordCard) *vector.Vector {
	v := vector.New(vector.KindInt64, 0)
	for _, c := range cards {
		v.AppendInt64(c.rows)
	}
	return v
}
