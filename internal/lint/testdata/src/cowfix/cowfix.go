// Package cowfix seeds cowcheck violations: every write through the
// read-only vector accessors, plus the allowed patterns (reads,
// Mutable* writes, Set, and the //lint:allow escape hatch).
package cowfix

import (
	"sort"

	"repro/internal/vector"
)

type holder struct {
	data []int64
}

func writeDirect(v *vector.Vector) {
	v.Int64s()[0] = 1 // want `write through read-only vector view`
}

func writeViaVar(v *vector.Vector) {
	fs := v.Float64s()
	fs[2] = 3.14 // want `write through read-only vector view`
}

func writeViaReslice(v *vector.Vector) {
	tail := v.Int64s()[1:]
	tail[0]++ // want `write through read-only vector view`
}

func writeCompound(v *vector.Vector) {
	xs := v.Int64s()
	xs[0] += 7 // want `write through read-only vector view`
}

func appendToView(v *vector.Vector) []int64 {
	return append(v.Int64s(), 9) // want `append to read-only vector view`
}

func copyIntoView(v *vector.Vector, src []bool) {
	copy(v.Bools(), src) // want `copy into read-only vector view`
}

func escapeToField(v *vector.Vector, h *holder) {
	h.data = v.Int64s() // want `escapes into a struct field`
}

func escapeToLiteral(v *vector.Vector) holder {
	return holder{data: v.Int64s()} // want `escapes into a struct field`
}

func passToWriter(v *vector.Vector) {
	scrub(v.Int64s()) // want `passed to scrub, which writes it`
}

func scrub(xs []int64) {
	for i := range xs {
		xs[i] = 0
	}
}

func sortView(v *vector.Vector) {
	sort.Slice(v.Float64s(), func(i, j int) bool { return i < j }) // want `passed to Slice, which writes it`
}

// --- allowed patterns ---

func readOnlyRange(v *vector.Vector) int64 {
	var sum int64
	for _, x := range v.Int64s() {
		sum += x
	}
	return sum
}

func readThroughLocal(v *vector.Vector) float64 {
	fs := v.Float64s()
	return fs[0]
}

func mutableWrite(v *vector.Vector) {
	v.MutableInt64s()[0] = 1
}

func setWrite(v *vector.Vector) {
	v.Set(0, vector.Value{Kind: vector.KindInt64, I: 7})
}

func readIntoFresh(v *vector.Vector) []int64 {
	out := make([]int64, 0, v.Len())
	return append(out, v.Int64s()...) // appending FROM a view only reads it
}

func passToReader(v *vector.Vector) int64 {
	return sum(v.Int64s()) // sum only reads its parameter
}

func sum(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

func allowedEscape(v *vector.Vector, h *holder) {
	h.data = v.Int64s() //lint:allow cowcheck the holder is documented as a read-only borrow
}
