// Package ctxfix seeds ctxcheck rule-1 violations: context roots in
// internal code, plus the allowed patterns (threading the caller's
// ctx, and the //lint:allow escape hatch with its mandatory reason).
package ctxfix

import "context"

func rootBackground() context.Context {
	return context.Background() // want `context.Background\(\) severs cancellation`
}

func rootTODO() {
	ctx := context.TODO() // want `context.TODO\(\) severs cancellation`
	_ = ctx
}

func rootInArgument(run func(context.Context)) {
	run(context.Background()) // want `context.Background\(\) severs cancellation`
}

// --- allowed patterns ---

func threaded(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx) // deriving from the caller's ctx is the point
}

func allowedRoot() context.Context {
	return context.Background() //lint:allow ctxcheck this fixture function stands in for a process entry point
}

func allowedAbove() context.Context {
	//lint:allow ctxcheck a directive on the preceding line also applies
	return context.Background()
}

func missingReason() {
	_ = context.Background() //lint:allow ctxcheck // want `needs a reason`
}
