// Package lockfix pins lockcheck's false-positive rate on the engine's
// own concurrency idioms, all deliberately clean: the single-flight
// ticket handoff (register under the lock, join after the unlock), the
// cond.Wait consume loop, double-checked RLock→Lock promotion, spill
// settlement that pays modeled I/O after releasing the lock, and
// goroutine spawns under a held mutex. Any diagnostic at all fails the
// fixture's test.
package lockfix

import (
	"sync"

	"repro/internal/storage"
)

type flight struct {
	done chan struct{}
}

type Table struct {
	mu      sync.Mutex
	flights map[string]*flight
}

// Join is the ticket handoff: an existing flight is joined strictly
// after the unlock; a new one is registered under the lock and
// returned without blocking.
func (t *Table) Join(key string) *flight {
	t.mu.Lock()
	if f, ok := t.flights[key]; ok {
		t.mu.Unlock()
		<-f.done
		return f
	}
	f := &flight{done: make(chan struct{})}
	t.flights[key] = f
	t.mu.Unlock()
	return f
}

// Publish unregisters under the lock and wakes riders after it.
func (t *Table) Publish(key string) {
	t.mu.Lock()
	f := t.flights[key]
	delete(t.flights, key)
	t.mu.Unlock()
	if f != nil {
		close(f.done)
	}
}

// SpawnNotify blocks only inside the spawned goroutine, never the
// spawning critical section.
func (t *Table) SpawnNotify(ch chan<- string, key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	go func() { ch <- key }()
}

type Queue struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items []int
}

// Pop waits on the queue's own condition: Wait releases q.mu while
// blocked, so holding it around the loop is the intended pattern.
func (q *Queue) Pop() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 {
		q.cond.Wait()
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

type Codes struct {
	rw    sync.RWMutex
	codes map[string]int
	next  int
}

// Code is double-checked promotion: the read lock is fully released
// before the write lock is taken (the dict.Code shape).
func (c *Codes) Code(s string) int {
	c.rw.RLock()
	if v, ok := c.codes[s]; ok {
		c.rw.RUnlock()
		return v
	}
	c.rw.RUnlock()
	c.rw.Lock()
	defer c.rw.Unlock()
	if v, ok := c.codes[s]; ok {
		return v
	}
	v := c.next
	c.codes[s] = v
	c.next++
	return v
}

type Spiller struct {
	mu    sync.Mutex
	dirty int64
	model storage.DiskModel
	clock *storage.Clock
}

// Settle snapshots the dirty ledger under the lock and pays the
// modeled write cost only after releasing it (the spill-settle shape).
func (s *Spiller) Settle() {
	s.mu.Lock()
	n := s.dirty
	s.dirty = 0
	s.mu.Unlock()
	if n > 0 {
		s.model.ChargeWrite(s.clock, n)
	}
}
