// Package spillfix seeds releasecheck's spill-file pairing violations:
// storage.CreateSpillFile handles leaked on some path or discarded
// outright, plus the allowed patterns (settling on every path, defers,
// escapes that transfer the obligation, wrappers and //lint:allow).
package spillfix

import (
	"errors"

	"repro/internal/storage"
)

func work() {}

func leakNoSettle(dir string) error {
	sf, err := storage.CreateSpillFile(dir, "x-*.spill") // want `storage.CreateSpillFile is not released on every path`
	if err != nil {
		return err
	}
	_ = sf.File()
	return nil
}

func leakEarlyReturn(dir string, fail bool) error {
	sf, err := storage.CreateSpillFile(dir, "x-*.spill") // want `storage.CreateSpillFile is not released on every path`
	if err != nil {
		return err
	}
	if fail {
		return errors.New("early exit skips the settle")
	}
	sf.Remove()
	return nil
}

func leakOnPanic(dir string, n int) {
	sf, err := storage.CreateSpillFile(dir, "x-*.spill") // want `storage.CreateSpillFile is not released on every path`
	if err != nil {
		return
	}
	if n > 1<<20 {
		panic("absurd request")
	}
	sf.Remove()
}

func leakDiscarded(dir string) {
	storage.CreateSpillFile(dir, "x-*.spill") // want `result of storage.CreateSpillFile is discarded`
}

func leakBlankHandle(dir string) error {
	_, err := storage.CreateSpillFile(dir, "x-*.spill") // want `result of storage.CreateSpillFile is discarded`
	return err
}

// --- allowed patterns ---

func okBothPaths(dir string, keep bool) error {
	sf, err := storage.CreateSpillFile(dir, "x-*.spill")
	if err != nil {
		return err
	}
	if keep {
		_, err := sf.Adopt()
		return err
	}
	sf.Remove()
	return nil
}

func okDeferred(dir string) error {
	sf, err := storage.CreateSpillFile(dir, "x-*.spill")
	if err != nil {
		return err
	}
	defer sf.Remove()
	work()
	return nil
}

func okDeferredClosure(dir string) error {
	sf, err := storage.CreateSpillFile(dir, "x-*.spill")
	if err != nil {
		return err
	}
	defer func() {
		work()
		sf.Remove()
	}()
	work()
	return nil
}

func okWrapper(dir string) (*storage.SpillFile, error) {
	return storage.CreateSpillFile(dir, "wrapped-*.spill") // the caller owns the settle
}

type holder struct{ sf *storage.SpillFile }

func okEscapesToField(dir string, h *holder) error {
	sf, err := storage.CreateSpillFile(dir, "x-*.spill")
	if err != nil {
		return err
	}
	h.sf = sf // the holder owns the settle
	return nil
}

func settle(sf *storage.SpillFile) { sf.Remove() }

func okEscapesAsArgument(dir string) error {
	sf, err := storage.CreateSpillFile(dir, "x-*.spill")
	if err != nil {
		return err
	}
	settle(sf)
	return nil
}

func okEscapesToClosure(dir string) (func(), error) {
	sf, err := storage.CreateSpillFile(dir, "x-*.spill")
	if err != nil {
		return nil, err
	}
	return func() { sf.Remove() }, nil // the closure owns the settle
}

func okAllowed(dir string) error {
	sf, err := storage.CreateSpillFile(dir, "x-*.spill") //lint:allow releasecheck a teardown elsewhere settles this file (fixture)
	if err != nil {
		return err
	}
	_ = sf.File()
	return nil
}
