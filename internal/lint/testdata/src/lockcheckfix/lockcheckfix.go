// Package lockcheckfix seeds lockcheck violations: every blocking-op
// class held across a mutex (channel operations, known blocking
// externals, transitive mayblock callees), self-relock, and
// acquisition-order inversion — plus the allowed patterns (release
// before blocking, goroutine spawn under lock, cond.Wait on the held
// mutex's own struct, and the //lint:allow escape hatch).
package lockcheckfix

import (
	"context"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/par"
	"repro/internal/storage"
)

type Service struct {
	mu sync.Mutex
	rw sync.RWMutex
}

func (s *Service) sendHeld(ch chan int) {
	s.mu.Lock()
	ch <- 1 // want `mutex Service.mu is held across a channel send`
	s.mu.Unlock()
}

func (s *Service) recvDeferred(ch chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock() // the deferred Unlock holds s.mu to function exit
	return <-ch         // want `mutex Service.mu is held across a channel receive`
}

func (s *Service) selectHeld(ch, done chan int) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	select { // want `mutex Service.rw is held across a select without a default clause`
	case <-ch:
	case <-done:
	}
}

func (s *Service) rangeHeld(ch chan int) {
	s.mu.Lock()
	for range ch { // want `mutex Service.mu is held across a range over a channel`
	}
	s.mu.Unlock()
}

func (s *Service) sleepHeld() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `mutex Service.mu is held across time.Sleep`
	s.mu.Unlock()
}

func (s *Service) waitGroupHeld(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want `mutex Service.mu is held across sync.WaitGroup.Wait`
	s.mu.Unlock()
}

func (s *Service) admitHeld(ctx context.Context, g *admission.Gate) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return g.Acquire(ctx, "fixture", 1) // want `mutex Service.mu is held across admission.Gate.Acquire`
}

func (s *Service) chargeHeld(m storage.DiskModel, c *storage.Clock) {
	s.mu.Lock()
	m.ChargeRead(c, 1, false) // want `mutex Service.mu is held across storage.DiskModel I/O charge`
	s.mu.Unlock()
}

// blockHelper is a module-internal function the mayblock fact must
// classify: calling it under a lock is as bad as receiving directly.
func blockHelper(ch chan int) int {
	return <-ch
}

func (s *Service) transitiveHeld(ch chan int) {
	s.mu.Lock()
	blockHelper(ch) // want `mutex Service.mu is held across a call to lockcheckfix.blockHelper, which may block \(channel receive\)`
	s.mu.Unlock()
}

// crossPackageHeld pins the mayblock fact's cross-package transitivity:
// par.ForEachOrdered blocks (it drains its results channel), and this
// package only learns that through the module-wide fact.
func (s *Service) crossPackageHeld(n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return par.ForEachOrdered(n, 2, // want `mutex Service.mu is held across a call to par.ForEachOrdered, which may block`
		func(i int) (int, error) { return i, nil },
		func(i, v int) error { return nil })
}

func (s *Service) relock() {
	s.mu.Lock()
	s.mu.Lock() // want `mutex Service.mu is re-acquired while already held \(self-deadlock\)`
	s.mu.Unlock()
}

// Pair seeds an acquisition-order inversion: lockAB establishes a→b,
// lockBA establishes b→a; each nested site is reported.
type Pair struct {
	a, b sync.Mutex
}

func (p *Pair) lockAB() {
	p.a.Lock()
	p.b.Lock() // want `lock order inversion: Pair.b is acquired while Pair.a is held, but the opposite order exists at`
	p.b.Unlock()
	p.a.Unlock()
}

func (p *Pair) lockBA() {
	p.b.Lock()
	p.a.Lock() // want `lock order inversion: Pair.a is acquired while Pair.b is held, but the opposite order exists at`
	p.a.Unlock()
	p.b.Unlock()
}

// Waiter pins the cond.Wait exemption: Wait on a condition hanging off
// the held mutex's own struct releases that mutex while waiting.
type Waiter struct {
	mu    sync.Mutex
	cond  *sync.Cond
	ready bool
}

func (w *Waiter) waitOwn() { // clean: w.cond pairs with w.mu
	w.mu.Lock()
	defer w.mu.Unlock()
	for !w.ready {
		w.cond.Wait()
	}
}

func waitForeign(w *Waiter, s *Service) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.cond.Wait() // want `mutex Service.mu is held across sync.Cond.Wait`
}

// --- allowed patterns ---

func (s *Service) releaseThenBlock(ch chan int) int {
	s.mu.Lock()
	s.mu.Unlock()
	return <-ch // clean: released before blocking
}

func (s *Service) riderBranch(ch chan int, ride bool) {
	s.mu.Lock()
	if ride {
		s.mu.Unlock()
		<-ch // clean: this path released first
		return
	}
	s.mu.Unlock()
}

func (s *Service) spawnHeld(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { ch <- 1 }() // clean: the goroutine does not run under s.mu
}

func (s *Service) pollHeld(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // clean: a default clause makes the select non-blocking
	case <-ch:
	default:
	}
}

func (s *Service) allowedRecv(ch chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:allow lockcheck the fixture documents the escape hatch for a considered exception
	return <-ch
}
