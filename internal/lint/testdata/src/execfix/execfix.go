// Package execfix seeds ctxcheck rule-2 and rule-3 violations; the
// test loads it under a synthetic import path ending internal/exec, so
// the operator-package rules apply: goroutines must thread a reachable
// context, and mountsvc.Request literals must set Ctx.
package execfix

import (
	"context"

	"repro/internal/mountsvc"
)

type env struct {
	Ctx context.Context
}

func work() {}

func workCtx(ctx context.Context) { _ = ctx }

func (e *env) spawnDropped() {
	go work() // want `goroutine drops the reachable context`
}

func (e *env) spawnDroppedClosure() {
	go func() { // want `goroutine drops the reachable context`
		work()
	}()
}

func requestWithoutCtx(uri string) mountsvc.Request {
	return mountsvc.Request{ // want `mountsvc.Request built without Ctx`
		URI: uri,
	}
}

// --- allowed patterns ---

func (e *env) spawnThreadedCapture() {
	ctx := e.Ctx
	go func() {
		workCtx(ctx)
	}()
}

func (e *env) spawnThreadedArg() {
	go workCtx(e.Ctx)
}

func (e *env) spawnThreadedEnv() {
	go func(inner *env) {
		workCtx(inner.Ctx)
	}(e)
}

func spawnNoCtxInReach() {
	go work() // nothing to thread: the spawner has no context in reach
}

func requestWithCtx(ctx context.Context, uri string) mountsvc.Request {
	return mountsvc.Request{URI: uri, Ctx: ctx}
}
