package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// StatCheck enforces the stats-accounting discipline every package
// hand-rolls: counters live in structs named *Stats, owned by a struct
// that also owns a mutex, and
//
//   - fields of a guarded stats struct are written only while a lock is
//     held (or via sync/atomic, whose &field arguments are not plain
//     writes and pass untouched). A stats struct is "guarded" when some
//     module struct holding a sync.Mutex/RWMutex reaches it through its
//     fields (Env{statsMu, Mounts *MountStats}, Gate{mu, sessions →
//     SessionStats}, BufferPool{mu, stats PoolStats}); free-standing
//     snapshot and metadata types (zone-map RecordStats, result Stats)
//     are single-owner by construction and unconstrained. Writes inside
//     function literals are attributed to the call site's locking
//     contract (the addMountStats callback pattern) — except goroutine
//     bodies, which run concurrently and are checked on their own.
//     Functions whose name ends in "Locked" execute under the caller's
//     lock by convention.
//   - Stats() accessors return by-value snapshots: in a method whose
//     result is a stats struct value, a receiver-rooted map or slice
//     must not be assigned, returned, or placed in a composite literal
//     — it would alias guarded state past the unlock. Copy per entry.
//   - every counter declared in a guarded stats struct is written
//     somewhere in the module (dead-counter detection), reported at the
//     field's declaration.
var StatCheck = &Analyzer{
	Name: "statcheck",
	Doc:  "flags unguarded writes to guarded *Stats fields, aliasing stats snapshots, and dead counters",
	Run:  runStatCheck,
}

// isStatsNamed reports whether named is a module (or fixture) struct
// type whose name ends in "Stats".
func (u *Universe) isStatsNamed(named *types.Named) bool {
	obj := named.Obj()
	if obj == nil || !strings.HasSuffix(obj.Name(), "Stats") {
		return false
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return false
	}
	if obj.Pkg() == nil {
		return false
	}
	if p, ok := u.Packages[obj.Pkg().Path()]; ok && p.Standard {
		return false
	}
	return true
}

// indexStatsStructs records, for every stats struct declared in pkg,
// the owner of each of its fields (the dead-counter rule and the write
// rule both resolve fields through this index; a selection's receiver
// is the embedding struct, not the declaring one, so the index is
// keyed by the field object itself).
func (u *Universe) indexStatsStructs(pkg *Package) {
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || !u.isStatsNamed(named) {
			continue
		}
		st := named.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			u.statsFieldOwner[st.Field(i)] = named
		}
	}
}

// statsWriteFacts records every write to a stats-struct field in pkg:
// selector assignments and ++/--, address-taking (sync/atomic helpers
// operate through &s.field), keyed and positional composite literals,
// and whole-struct stores. Collected at load so the dead-counter rule
// sees the entire module before any package's pass runs.
func (u *Universe) statsWriteFacts(pkg *Package) {
	u.indexStatsStructs(pkg)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					u.recordStatsWrite(pkg, lhs)
				}
			case *ast.IncDecStmt:
				u.recordStatsWrite(pkg, n.X)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					u.recordStatsWrite(pkg, n.X)
				}
			case *ast.CompositeLit:
				named := derefNamed(pkg.Info.TypeOf(n))
				if named == nil || !u.isStatsNamed(named) {
					return true
				}
				st := named.Underlying().(*types.Struct)
				keyed := false
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						keyed = true
						if id, ok := kv.Key.(*ast.Ident); ok {
							if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
								u.markStatsWrite(pkg, v)
							}
						}
					}
				}
				if !keyed && len(n.Elts) > 0 {
					for i := 0; i < st.NumFields(); i++ {
						u.markStatsWrite(pkg, st.Field(i))
					}
				}
			}
			return true
		})
	}
}

// recordStatsWrite handles one write target: a stats-struct field
// selector, or an expression whose whole type is a stats struct (which
// writes every field).
func (u *Universe) recordStatsWrite(pkg *Package, e ast.Expr) {
	e = ast.Unparen(e)
	if star, ok := e.(*ast.StarExpr); ok {
		e = ast.Unparen(star.X)
	}
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if s, ok := pkg.Info.Selections[sel]; ok {
			if v, ok := s.Obj().(*types.Var); ok {
				if _, isStats := u.statsFieldOwner[v]; isStats {
					u.markStatsWrite(pkg, v)
				}
			}
		}
	}
	if named := derefNamed(pkg.Info.TypeOf(e)); named != nil && u.isStatsNamed(named) {
		st := named.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			u.markStatsWrite(pkg, st.Field(i))
		}
	}
}

func (u *Universe) markStatsWrite(pkg *Package, v *types.Var) {
	set := u.statsWrites[v]
	if set == nil {
		set = make(map[string]bool)
		u.statsWrites[v] = set
	}
	set[pkg.PkgPath] = true
}

// --- guarded classification ---

// ensureGuardedStats computes which stats structs are reachable from a
// mutex-owning struct: once over the module, then incrementally for
// fixture packages loaded outside it.
func (u *Universe) ensureGuardedStats(pkg *Package) {
	if u.guardedStat == nil {
		u.guardedStat = make(map[*types.Named]bool)
		u.classifiedPkgs = make(map[*Package]bool)
		for _, p := range u.Module {
			u.classifyGuarded(p)
		}
	}
	inModule := false
	for _, p := range u.Module {
		if p == pkg {
			inModule = true
			break
		}
	}
	if !inModule && !u.classifiedPkgs[pkg] {
		u.classifyGuarded(pkg)
	}
}

func (u *Universe) classifyGuarded(pkg *Package) {
	u.classifiedPkgs[pkg] = true
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok || !hasMutexField(st) {
			continue
		}
		visited := make(map[*types.Named]bool)
		u.markReachableStats(st, visited)
	}
}

func hasMutexField(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		t := st.Field(i).Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
				(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
				return true
			}
		}
	}
	return false
}

// markReachableStats walks st's field types through pointers, slices,
// arrays, and map values, marking every stats struct reached (and
// recursing through intermediate structs like admission's
// sessionState).
func (u *Universe) markReachableStats(st *types.Struct, visited map[*types.Named]bool) {
	for i := 0; i < st.NumFields(); i++ {
		u.markReachableType(st.Field(i).Type(), visited)
	}
}

func (u *Universe) markReachableType(t types.Type, visited map[*types.Named]bool) {
	switch t := t.(type) {
	case *types.Pointer:
		u.markReachableType(t.Elem(), visited)
	case *types.Slice:
		u.markReachableType(t.Elem(), visited)
	case *types.Array:
		u.markReachableType(t.Elem(), visited)
	case *types.Map:
		u.markReachableType(t.Elem(), visited)
	case *types.Chan:
		u.markReachableType(t.Elem(), visited)
	case *types.Named:
		if visited[t] {
			return
		}
		visited[t] = true
		if u.isStatsNamed(t) {
			u.guardedStat[t] = true
		}
		if st, ok := t.Underlying().(*types.Struct); ok {
			u.markReachableStats(st, visited)
		}
	}
}

// derefNamed returns the named type behind t, unwrapping one pointer.
func derefNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// --- the analyzer ---

func runStatCheck(pass *Pass) {
	pass.Universe.ensureGuardedStats(pass.Pkg)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				deadCounterCheck(pass, d)
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				statWriteUnits(pass, d)
				snapshotCheck(pass, d)
			}
		}
	}
}

// deadCounterCheck reports numeric fields of guarded stats structs
// declared in this package that no module package ever writes.
func deadCounterCheck(pass *Pass, d *ast.GenDecl) {
	u := pass.Universe
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		tn, ok := pass.Pkg.Info.Defs[ts.Name].(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || !u.isStatsNamed(named) || !u.guardedStat[named] {
			continue
		}
		st := named.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !isCounterType(f.Type()) {
				continue
			}
			live := false
			for p := range u.statsWrites[f] {
				if p == pass.Pkg.PkgPath {
					live = true
					break
				}
				if lp, ok := u.Packages[p]; ok && !lp.Standard {
					live = true
					break
				}
			}
			if !live {
				pass.Reportf(f.Pos(), "counter %s.%s is declared but never updated", named.Obj().Name(), f.Name())
			}
		}
	}
}

func isCounterType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// statWriteUnits applies the guarded-write rule to a function and its
// nested literals. Literal classification: a goroutine body is its own
// concurrent unit (checked); any other literal runs under its call
// site's locking contract (waived).
func statWriteUnits(pass *Pass, fd *ast.FuncDecl) {
	goBodies := make(map[*ast.FuncLit]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
				goBodies[fl] = true
			}
		}
		return true
	})
	type unit struct {
		body   *ast.BlockStmt
		waived bool
	}
	units := []unit{{fd.Body, strings.HasSuffix(fd.Name.Name, "Locked")}}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			units = append(units, unit{fl.Body, !goBodies[fl]})
		}
		return true
	})
	for _, un := range units {
		if un.waived {
			continue
		}
		scanStatWrites(pass, un.body)
	}
}

func scanStatWrites(pass *Pass, body *ast.BlockStmt) {
	var held map[ast.Stmt]bool // computed on first candidate
	check := func(e ast.Expr, stmt ast.Stmt) {
		if !isGuardedStatsWrite(pass, e) {
			return
		}
		if localValueChain(pass.Pkg.Info, e) {
			return // a private value copy; racing is impossible
		}
		if held == nil {
			held = heldStmts(pass.Universe, pass.Pkg, body)
		}
		if held[stmt] {
			return
		}
		pass.Reportf(stmt.Pos(), "write to %s outside the owning lock (hold the mutex or use sync/atomic)",
			writeTarget(pass, e))
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // classified separately by statWriteUnits
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				check(lhs, n)
			}
		case *ast.IncDecStmt:
			check(n.X, n)
		}
		return true
	})
}

// isGuardedStatsWrite reports whether e (a write target) is a field of
// a guarded stats struct, or a whole guarded stats struct.
func isGuardedStatsWrite(pass *Pass, e ast.Expr) bool {
	u := pass.Universe
	e = ast.Unparen(e)
	if star, ok := e.(*ast.StarExpr); ok {
		e = ast.Unparen(star.X)
	}
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if s, ok := pass.Pkg.Info.Selections[sel]; ok {
			if v, ok := s.Obj().(*types.Var); ok {
				if owner, isStats := u.statsFieldOwner[v]; isStats && u.guardedStat[owner] {
					return true
				}
			}
		}
	}
	if named := derefNamed(pass.Pkg.Info.TypeOf(e)); named != nil && u.isStatsNamed(named) && u.guardedStat[named] {
		return true
	}
	return false
}

func writeTarget(pass *Pass, e ast.Expr) string {
	e = ast.Unparen(e)
	if star, ok := e.(*ast.StarExpr); ok {
		e = ast.Unparen(star.X)
	}
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if s, ok := pass.Pkg.Info.Selections[sel]; ok {
			if v, ok := s.Obj().(*types.Var); ok {
				if owner, isStats := pass.Universe.statsFieldOwner[v]; isStats {
					return owner.Obj().Name() + "." + v.Name()
				}
			}
		}
		return sel.Sel.Name
	}
	if named := derefNamed(pass.Pkg.Info.TypeOf(e)); named != nil {
		return named.Obj().Name()
	}
	return "stats"
}

// localValueChain reports whether e is a pure selector chain rooted at
// a function-local value (no pointer, slice, or map step): writes to
// such a chain touch a private copy, never shared state.
func localValueChain(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	for {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			break
		}
		if t := info.TypeOf(sel.X); t != nil {
			if _, ptr := t.Underlying().(*types.Pointer); ptr {
				return false
			}
		}
		e = ast.Unparen(sel.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if _, ptr := v.Type().Underlying().(*types.Pointer); ptr {
		return false
	}
	// Package-level variables are shared; everything else (locals,
	// value parameters, value receivers) is a private copy.
	return v.Pkg() == nil || v.Parent() != v.Pkg().Scope()
}

// snapshotCheck enforces by-value snapshots: in a method returning a
// stats struct by value, no receiver-rooted map or slice may escape
// into an assignment, a composite literal, or a return value, and no
// receiver-rooted struct containing reference fields may be returned
// whole.
func snapshotCheck(pass *Pass, fd *ast.FuncDecl) {
	u := pass.Universe
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return
	}
	fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := fn.Type().(*types.Signature)
	returnsStats := false
	for i := 0; i < sig.Results().Len(); i++ {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok && u.isStatsNamed(named) {
			returnsStats = true
		}
	}
	if !returnsStats {
		return
	}
	// The receiver object seen by body identifiers is the one defined by
	// the receiver declaration (Signature.Recv is a distinct variable).
	var recv types.Object
	if len(fd.Recv.List[0].Names) > 0 {
		recv = pass.Pkg.Info.Defs[fd.Recv.List[0].Names[0]]
	}
	if recv == nil {
		return // unnamed receiver: nothing can be rooted at it
	}
	flag := func(e ast.Expr) {
		e = ast.Unparen(e)
		if !receiverRooted(pass.Pkg.Info, e, recv) {
			return
		}
		t := pass.Pkg.Info.TypeOf(e)
		if t == nil {
			return
		}
		switch t.Underlying().(type) {
		case *types.Map, *types.Slice:
			pass.Reportf(e.Pos(), "stats snapshot aliases receiver state (%s escapes the lock); copy it instead", types.TypeString(t, types.RelativeTo(pass.Pkg.Types)))
		default:
			if named := derefNamed(t); named != nil && u.isStatsNamed(named) && typeHasRefFields(named, nil) {
				pass.Reportf(e.Pos(), "stats snapshot returns receiver-aliased %s, whose map/slice fields escape the lock; copy them instead", named.Obj().Name())
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				flag(r)
			}
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				flag(r)
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					flag(kv.Value)
				} else {
					flag(elt)
				}
			}
		}
		return true
	})
}

// receiverRooted reports whether e is a pure selector chain (possibly
// through pointers and a final dereference) rooted at the method's
// receiver.
func receiverRooted(info *types.Info, e ast.Expr, recv types.Object) bool {
	e = ast.Unparen(e)
	if star, ok := e.(*ast.StarExpr); ok {
		e = ast.Unparen(star.X)
	}
	for {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			break
		}
		e = ast.Unparen(sel.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	return obj != nil && obj == recv
}

// typeHasRefFields reports whether the struct behind named carries any
// map or slice field, directly or through nested structs.
func typeHasRefFields(named *types.Named, visited map[*types.Named]bool) bool {
	if visited == nil {
		visited = make(map[*types.Named]bool)
	}
	if visited[named] {
		return false
	}
	visited[named] = true
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		switch t := st.Field(i).Type(); t.Underlying().(type) {
		case *types.Map, *types.Slice:
			return true
		default:
			if n := derefNamed(t); n != nil && typeHasRefFields(n, visited) {
				return true
			}
		}
	}
	return false
}
