package seismic

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/repo"
	"repro/internal/vector"
)

func genOne(t *testing.T) (*repo.Manifest, repo.Spec) {
	t.Helper()
	spec := repo.DefaultSpec(t.TempDir())
	spec.Stations = spec.Stations[:1]
	spec.Channels = spec.Channels[:1]
	spec.Days = 1
	spec.RecordsPerFile = 3
	spec.SamplesPerRecord = 400
	m, err := repo.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return m, spec
}

func TestAdapterImplementsInterface(t *testing.T) {
	var _ catalog.FormatAdapter = NewAdapter()
}

func TestTablesShape(t *testing.T) {
	a := NewAdapter()
	f, r, d := a.Tables()
	if f.Kind != catalog.Metadata || r.Kind != catalog.Metadata || d.Kind != catalog.ActualData {
		t.Error("table kinds wrong")
	}
	for _, def := range []catalog.TableDef{f, r, d} {
		if def.ColumnIndex(a.URIColumn()) < 0 {
			t.Errorf("table %s lacks uri column", def.Name)
		}
	}
	if r.ColumnIndex(a.RecordIDColumn()) < 0 || d.ColumnIndex(a.RecordIDColumn()) < 0 {
		t.Error("record_id column missing")
	}
	if d.ColumnIndex(a.DataSpanColumn()) < 0 {
		t.Error("span column missing from D")
	}
}

func TestExtractMetadata(t *testing.T) {
	m, spec := genOne(t)
	a := NewAdapter()
	uri := m.Files[0].URI
	fm, rms, err := a.ExtractMetadata(m.Path(uri), uri)
	if err != nil {
		t.Fatal(err)
	}
	if fm.URI != uri {
		t.Errorf("file meta uri = %q", fm.URI)
	}
	// station value at position 2 per the F definition.
	if fm.Values[2].S != "ISK" {
		t.Errorf("station = %q", fm.Values[2].S)
	}
	if len(rms) != spec.RecordsPerFile {
		t.Fatalf("records = %d", len(rms))
	}
	if rms[1].RecordID != 1 {
		t.Errorf("record id = %d", rms[1].RecordID)
	}
	lo, hi, ok := a.RecordSpan(rms[0])
	if !ok || lo >= hi {
		t.Errorf("record span = %d..%d ok=%v", lo, hi, ok)
	}
}

func TestMountRowsMatchMetadata(t *testing.T) {
	m, spec := genOne(t)
	a := NewAdapter()
	uri := m.Files[0].URI
	_, rms, err := a.ExtractMetadata(m.Path(uri), uri)
	if err != nil {
		t.Fatal(err)
	}
	b, err := a.Mount(m.Path(uri), uri, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := spec.RecordsPerFile * spec.SamplesPerRecord
	if b.Len() != wantRows {
		t.Fatalf("mounted %d rows, want %d", b.Len(), wantRows)
	}
	if b.NumCols() != 4 {
		t.Fatalf("columns = %d", b.NumCols())
	}
	// sample_time of every row must lie inside its record's metadata span.
	times := b.Cols[2].Int64s()
	rids := b.Cols[1].Int64s()
	for i := 0; i < b.Len(); i += 97 {
		rm := rms[rids[i]]
		lo, hi, _ := a.RecordSpan(rm)
		if times[i] < lo || times[i] > hi {
			t.Fatalf("row %d time %d outside record span [%d,%d]", i, times[i], lo, hi)
		}
	}
	// First sample time must equal the record's start exactly.
	if times[0] != rms[0].Values[2].I {
		t.Error("first sample time != record start_time")
	}
}

func TestMountWithRecordFilter(t *testing.T) {
	m, spec := genOne(t)
	a := NewAdapter()
	uri := m.Files[0].URI
	b, err := a.Mount(m.Path(uri), uri, func(rm catalog.RecordMeta) bool {
		return rm.RecordID == 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != spec.SamplesPerRecord {
		t.Fatalf("filtered mount = %d rows, want %d", b.Len(), spec.SamplesPerRecord)
	}
	for _, rid := range b.Cols[1].Int64s() {
		if rid != 1 {
			t.Fatal("foreign record leaked through filter")
		}
	}
}

func TestMountMissingFile(t *testing.T) {
	a := NewAdapter()
	if _, err := a.Mount("/nonexistent/x.mseed", "x.mseed", nil); err == nil {
		t.Error("missing file mounted without error")
	}
	if _, _, err := a.ExtractMetadata("/nonexistent/x.mseed", "x.mseed"); err == nil {
		t.Error("missing file extracted without error")
	}
}

func TestEstimateHintColumnsExist(t *testing.T) {
	a := NewAdapter()
	f, r, _ := a.Tables()
	if f.ColumnIndex(a.FileSizeColumn()) < 0 {
		t.Error("FileSizeColumn not in F")
	}
	if r.ColumnIndex(a.RowCountColumn()) < 0 {
		t.Error("RowCountColumn not in R")
	}
	lo, hi := a.RecordSpanColumns()
	if r.ColumnIndex(lo) < 0 || r.ColumnIndex(hi) < 0 {
		t.Error("RecordSpanColumns not in R")
	}
}

func TestValuesMatchTableDefs(t *testing.T) {
	m, _ := genOne(t)
	a := NewAdapter()
	uri := m.Files[0].URI
	fm, rms, err := a.ExtractMetadata(m.Path(uri), uri)
	if err != nil {
		t.Fatal(err)
	}
	fdef, rdef, _ := a.Tables()
	if len(fm.Values) != len(fdef.Columns) {
		t.Errorf("file row has %d values, def has %d columns", len(fm.Values), len(fdef.Columns))
	}
	for i, v := range fm.Values {
		want := fdef.Columns[i].Kind
		if v.Kind != want && !(want == vector.KindTime && v.Kind == vector.KindInt64) {
			t.Errorf("F value %d kind %s, want %s", i, v.Kind, want)
		}
	}
	if len(rms[0].Values) != len(rdef.Columns) {
		t.Errorf("record row has %d values, def has %d columns", len(rms[0].Values), len(rdef.Columns))
	}
}

// TestMountStreamParity proves the streaming and materializing mount
// paths produce identical rows, with streamed batches record-aligned
// and within the requested size.
func TestMountStreamParity(t *testing.T) {
	m, _ := genOne(t)
	a := NewAdapter()
	uri := m.Files[0].URI
	whole, err := a.Mount(m.Path(uri), uri, nil)
	if err != nil {
		t.Fatal(err)
	}
	const batchRows = 256 // smaller than one record's 400 samples
	var streamed []*vector.Batch
	err = a.MountStream(m.Path(uri), uri, nil, batchRows, func(b *vector.Batch) error {
		streamed = append(streamed, b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	row := 0
	for bi, b := range streamed {
		if b.Len() > 400 { // one oversized record may exceed batchRows, never two
			t.Errorf("batch %d has %d rows", bi, b.Len())
		}
		ids := b.Cols[1].Int64s()
		if ids[0] != ids[len(ids)-1] && b.Len() > batchRows {
			t.Errorf("batch %d splits records AND exceeds batchRows", bi)
		}
		for i := 0; i < b.Len(); i++ {
			for c := range b.Cols {
				if vector.Compare(b.Cols[c].Get(i), whole.Cols[c].Get(row)) != 0 {
					t.Fatalf("row %d col %d differs between stream and mount", row, c)
				}
			}
			row++
		}
	}
	if row != whole.Len() {
		t.Fatalf("stream yielded %d rows, mount %d", row, whole.Len())
	}
}
