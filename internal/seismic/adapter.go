// Package seismic maps the mSEED file format onto the paper's
// three-table relational schema: F (file-level metadata), R (record-level
// metadata) and D (actual time-series data). It is the reference
// implementation of catalog.FormatAdapter — the "domain- and
// format-specific mappings and extractions" the paper's generalization
// challenge asks a scientific developer to provide.
package seismic

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/catalog"
	"repro/internal/mseed"
	"repro/internal/storage"
	"repro/internal/vector"
)

// Table names of the seismic schema (as in the paper's Query 1).
const (
	FileTable   = "F"
	RecordTable = "R"
	DataTable   = "D"
)

// AdapterName identifies this format in the registry.
const AdapterName = "mseed"

// Adapter implements catalog.FormatAdapter for mSEED repositories.
type Adapter struct{}

// NewAdapter returns the mSEED adapter.
func NewAdapter() *Adapter { return &Adapter{} }

// Name implements catalog.FormatAdapter.
func (a *Adapter) Name() string { return AdapterName }

// Tables implements catalog.FormatAdapter. The normalized schema follows
// section 3 of the paper: one metadata table F for file-level metadata,
// another R for record-level metadata, and a single actual-data table D
// storing (sample_time, sample_value) points from all files and records.
func (a *Adapter) Tables() (file, record, data catalog.TableDef) {
	file = catalog.TableDef{
		Name: FileTable,
		Kind: catalog.Metadata,
		Columns: []storage.Column{
			{Name: "uri", Kind: vector.KindString},
			{Name: "network", Kind: vector.KindString},
			{Name: "station", Kind: vector.KindString},
			{Name: "location", Kind: vector.KindString},
			{Name: "channel", Kind: vector.KindString},
			{Name: "year", Kind: vector.KindInt64},
			{Name: "day_of_year", Kind: vector.KindInt64},
			{Name: "size_bytes", Kind: vector.KindInt64},
			{Name: "record_count", Kind: vector.KindInt64},
		},
	}
	record = catalog.TableDef{
		Name: RecordTable,
		Kind: catalog.Metadata,
		Columns: []storage.Column{
			{Name: "uri", Kind: vector.KindString},
			{Name: "record_id", Kind: vector.KindInt64},
			{Name: "start_time", Kind: vector.KindTime},
			{Name: "end_time", Kind: vector.KindTime},
			{Name: "sample_rate", Kind: vector.KindFloat64},
			{Name: "nsamples", Kind: vector.KindInt64},
		},
	}
	data = catalog.TableDef{
		Name: DataTable,
		Kind: catalog.ActualData,
		Columns: []storage.Column{
			{Name: "uri", Kind: vector.KindString},
			{Name: "record_id", Kind: vector.KindInt64},
			{Name: "sample_time", Kind: vector.KindTime},
			{Name: "sample_value", Kind: vector.KindFloat64},
		},
	}
	return file, record, data
}

// URIColumn implements catalog.FormatAdapter.
func (a *Adapter) URIColumn() string { return "uri" }

// RecordIDColumn implements catalog.FormatAdapter.
func (a *Adapter) RecordIDColumn() string { return "record_id" }

// DataSpanColumn implements catalog.FormatAdapter: sample_time values of
// a record lie within [start_time, end_time].
func (a *Adapter) DataSpanColumn() string { return "sample_time" }

// RecordSpan implements catalog.FormatAdapter.
func (a *Adapter) RecordSpan(rm catalog.RecordMeta) (int64, int64, bool) {
	// Values are ordered per the record table definition above.
	if len(rm.Values) < 4 {
		return 0, 0, false
	}
	return rm.Values[2].I, rm.Values[3].I, true
}

// ExtractMetadata implements catalog.FormatAdapter: it reads record
// headers only — the waveform payload is skipped, never decompressed.
func (a *Adapter) ExtractMetadata(path, uri string) (catalog.FileMeta, []catalog.RecordMeta, error) {
	headers, err := mseed.ScanHeaders(path)
	if err != nil {
		return catalog.FileMeta{}, nil, fmt.Errorf("seismic: extract metadata: %w", err)
	}
	if len(headers) == 0 {
		return catalog.FileMeta{}, nil, fmt.Errorf("seismic: %s holds no records", path)
	}
	var sizeBytes int64
	records := make([]catalog.RecordMeta, len(headers))
	for i, h := range headers {
		sizeBytes += int64(mseed.HeaderSize + h.FrameBytes)
		records[i] = catalog.RecordMeta{
			URI:      uri,
			RecordID: int64(h.Seq),
			Values: []vector.Value{
				vector.Str(uri),
				vector.Int64(int64(h.Seq)),
				vector.Time(h.StartTime),
				vector.Time(h.EndTime()),
				vector.Float64(h.SampleRate),
				vector.Int64(int64(h.NSamples)),
			},
		}
	}
	first := headers[0]
	t := time.Unix(0, first.StartTime).UTC()
	fileMeta := catalog.FileMeta{
		URI: uri,
		Values: []vector.Value{
			vector.Str(uri),
			vector.Str(first.Network),
			vector.Str(first.Station),
			vector.Str(first.Location),
			vector.Str(first.Channel),
			vector.Int64(int64(t.Year())),
			vector.Int64(int64(t.YearDay())),
			vector.Int64(sizeBytes),
			vector.Int64(int64(len(headers))),
		},
	}
	return fileMeta, records, nil
}

// Mount implements catalog.FormatAdapter: extract, transform (decompress
// and materialize per-sample timestamps) and return the file's rows of D.
// Records rejected by keep are skipped without decompression.
func (a *Adapter) Mount(path, uri string, keep func(catalog.RecordMeta) bool) (*vector.Batch, error) {
	return catalog.CollectMount(a, path, uri, keep)
}

// MountStream implements catalog.FormatAdapter: records are decoded one
// at a time off the mseed reader and yielded in record-aligned batches,
// so consumers see data while the file is still being decompressed.
func (a *Adapter) MountStream(path, uri string, keep func(catalog.RecordMeta) bool, batchRows int, emit func(*vector.Batch) error) error {
	if batchRows <= 0 {
		batchRows = vector.DefaultBatchSize
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("seismic: mount %s: %w", uri, err)
	}
	defer f.Close()
	r := mseed.NewReader(f)

	var uris []string
	var ids, times []int64
	var vals []float64
	flush := func() error {
		if len(uris) == 0 {
			return nil
		}
		b := vector.NewBatch(
			vector.FromString(uris),
			vector.FromInt64(ids),
			vector.FromTime(times),
			vector.FromFloat64(vals),
		)
		uris, ids, times, vals = nil, nil, nil, nil
		return emit(b)
	}
	for {
		h, err := r.NextHeader()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("seismic: mount %s: %w", uri, err)
		}
		if keep != nil && !keep(recordMetaFromHeader(uri, h)) {
			if err := r.SkipPayload(h); err != nil {
				return fmt.Errorf("seismic: mount %s: %w", uri, err)
			}
			continue
		}
		samples, err := r.ReadPayload(h)
		if err != nil {
			return fmt.Errorf("seismic: mount %s: %w", uri, err)
		}
		// Record alignment: flush before a record that would overflow the
		// batch; a record bigger than batchRows goes out alone.
		if len(uris) > 0 && len(uris)+len(samples) > batchRows {
			if err := flush(); err != nil {
				return err
			}
		}
		for i, s := range samples {
			uris = append(uris, uri)
			ids = append(ids, int64(h.Seq))
			// Use the header's own timestamp materialization so mounted
			// sample_time values agree exactly with R.start_time/end_time.
			times = append(times, h.SampleTime(i))
			vals = append(vals, float64(s))
		}
	}
	return flush()
}

func recordMetaFromHeader(uri string, h mseed.Header) catalog.RecordMeta {
	return catalog.RecordMeta{
		URI:      uri,
		RecordID: int64(h.Seq),
		Values: []vector.Value{
			vector.Str(uri),
			vector.Int64(int64(h.Seq)),
			vector.Time(h.StartTime),
			vector.Time(h.EndTime()),
			vector.Float64(h.SampleRate),
			vector.Int64(int64(h.NSamples)),
		},
	}
}

// FileSizeColumn implements the engine's EstimateHints extension: the
// informativeness model reads file sizes from F.size_bytes.
func (a *Adapter) FileSizeColumn() string { return "size_bytes" }

// RowCountColumn implements EstimateHints: per-record sample counts live
// in R.nsamples.
func (a *Adapter) RowCountColumn() string { return "nsamples" }

// RecordSpanColumns implements EstimateHints: each record covers
// [start_time, end_time].
func (a *Adapter) RecordSpanColumns() (string, string) { return "start_time", "end_time" }
