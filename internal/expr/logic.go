package expr

import (
	"fmt"

	"repro/internal/vector"
)

// LogicOp enumerates boolean connectives.
type LogicOp int

// Boolean connectives.
const (
	OpAnd LogicOp = iota
	OpOr
)

func (op LogicOp) String() string {
	if op == OpAnd {
		return "AND"
	}
	return "OR"
}

// Logic combines two boolean expressions.
type Logic struct {
	Op   LogicOp
	L, R Expr
}

// Kind implements Expr.
func (l *Logic) Kind() vector.Kind { return vector.KindBool }

// String implements Expr.
func (l *Logic) String() string {
	return fmt.Sprintf("(%s %s %s)", l.L.String(), l.Op, l.R.String())
}

// Walk implements Expr.
func (l *Logic) Walk(fn func(Expr)) { fn(l); l.L.Walk(fn); l.R.Walk(fn) }

// Eval implements Expr. AND short-circuits per batch: rows already false
// on the left are not evaluated as a selection, but the right side is
// computed vectorized over the full batch (cheap and branch-free).
func (l *Logic) Eval(b *vector.Batch) (*vector.Vector, error) {
	lv, err := l.L.Eval(b)
	if err != nil {
		return nil, err
	}
	if lv.Kind() != vector.KindBool {
		return nil, fmt.Errorf("expr: %s over non-boolean left operand %s", l.Op, l.L)
	}
	rv, err := l.R.Eval(b)
	if err != nil {
		return nil, err
	}
	if rv.Kind() != vector.KindBool {
		return nil, fmt.Errorf("expr: %s over non-boolean right operand %s", l.Op, l.R)
	}
	ls, rs := lv.Bools(), rv.Bools()
	out := make([]bool, len(ls))
	if l.Op == OpAnd {
		for i := range ls {
			out[i] = ls[i] && rs[i]
		}
	} else {
		for i := range ls {
			out[i] = ls[i] || rs[i]
		}
	}
	return vector.FromBool(out), nil
}

// Not negates a boolean expression.
type Not struct {
	E Expr
}

// Kind implements Expr.
func (n *Not) Kind() vector.Kind { return vector.KindBool }

// String implements Expr.
func (n *Not) String() string { return "NOT (" + n.E.String() + ")" }

// Walk implements Expr.
func (n *Not) Walk(fn func(Expr)) { fn(n); n.E.Walk(fn) }

// Eval implements Expr.
func (n *Not) Eval(b *vector.Batch) (*vector.Vector, error) {
	v, err := n.E.Eval(b)
	if err != nil {
		return nil, err
	}
	if v.Kind() != vector.KindBool {
		return nil, fmt.Errorf("expr: NOT over non-boolean operand %s", n.E)
	}
	in := v.Bools()
	out := make([]bool, len(in))
	for i := range in {
		out[i] = !in[i]
	}
	return vector.FromBool(out), nil
}

// SplitAnd flattens nested ANDs into a conjunct list; a non-AND
// expression returns itself. Predicate pushdown operates on this list.
func SplitAnd(e Expr) []Expr {
	if l, ok := e.(*Logic); ok && l.Op == OpAnd {
		return append(SplitAnd(l.L), SplitAnd(l.R)...)
	}
	return []Expr{e}
}

// JoinAnd rebuilds a single conjunction from a list (nil for empty).
func JoinAnd(conjuncts []Expr) Expr {
	var out Expr
	for _, c := range conjuncts {
		if out == nil {
			out = c
		} else {
			out = &Logic{Op: OpAnd, L: out, R: c}
		}
	}
	return out
}

// Cols returns the distinct column indexes referenced by e, ascending.
func Cols(e Expr) []int {
	seen := make(map[int]bool)
	e.Walk(func(x Expr) {
		if c, ok := x.(*Col); ok {
			seen[c.Index] = true
		}
	})
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sortInts(out)
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Remap rewrites every column reference through the mapping (old index →
// new index). It returns false if any referenced column is unmapped, in
// which case the expression cannot be pushed to the target operator.
func Remap(e Expr, mapping map[int]int) (Expr, bool) {
	switch t := e.(type) {
	case *Col:
		ni, ok := mapping[t.Index]
		if !ok {
			return nil, false
		}
		return &Col{Index: ni, Name: t.Name, K: t.K}, true
	case *Const:
		return t, true
	case *Compare:
		l, ok := Remap(t.L, mapping)
		if !ok {
			return nil, false
		}
		r, ok := Remap(t.R, mapping)
		if !ok {
			return nil, false
		}
		return &Compare{Op: t.Op, L: l, R: r}, true
	case *Logic:
		l, ok := Remap(t.L, mapping)
		if !ok {
			return nil, false
		}
		r, ok := Remap(t.R, mapping)
		if !ok {
			return nil, false
		}
		return &Logic{Op: t.Op, L: l, R: r}, true
	case *Not:
		inner, ok := Remap(t.E, mapping)
		if !ok {
			return nil, false
		}
		return &Not{E: inner}, true
	case *Arith:
		l, ok := Remap(t.L, mapping)
		if !ok {
			return nil, false
		}
		r, ok := Remap(t.R, mapping)
		if !ok {
			return nil, false
		}
		return &Arith{Op: t.Op, L: l, R: r}, true
	default:
		return nil, false
	}
}
