package expr

import (
	"fmt"

	"repro/internal/vector"
)

// ArithOp enumerates arithmetic operators.
type ArithOp int

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

func (op ArithOp) String() string {
	return [...]string{"+", "-", "*", "/"}[op]
}

// Arith is a binary arithmetic expression. Integer operands produce
// BIGINT (with SQL-style truncating division); any DOUBLE operand
// promotes the result to DOUBLE.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Kind implements Expr.
func (a *Arith) Kind() vector.Kind {
	if a.L.Kind() == vector.KindFloat64 || a.R.Kind() == vector.KindFloat64 {
		return vector.KindFloat64
	}
	return vector.KindInt64
}

// String implements Expr.
func (a *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L.String(), a.Op, a.R.String())
}

// Walk implements Expr.
func (a *Arith) Walk(fn func(Expr)) { fn(a); a.L.Walk(fn); a.R.Walk(fn) }

// Eval implements Expr.
func (a *Arith) Eval(b *vector.Batch) (*vector.Vector, error) {
	lv, err := a.L.Eval(b)
	if err != nil {
		return nil, err
	}
	rv, err := a.R.Eval(b)
	if err != nil {
		return nil, err
	}
	if lv.Len() != rv.Len() {
		return nil, fmt.Errorf("expr: arithmetic over %d vs %d rows", lv.Len(), rv.Len())
	}
	numeric := func(k vector.Kind) bool {
		return k == vector.KindInt64 || k == vector.KindFloat64 || k == vector.KindTime
	}
	if !numeric(lv.Kind()) || !numeric(rv.Kind()) {
		return nil, fmt.Errorf("expr: arithmetic over %s and %s", lv.Kind(), rv.Kind())
	}
	n := lv.Len()
	if a.Kind() == vector.KindInt64 && lv.Kind() != vector.KindFloat64 && rv.Kind() != vector.KindFloat64 {
		ls, rs := lv.Int64s(), rv.Int64s()
		out := make([]int64, n)
		for i := 0; i < n; i++ {
			switch a.Op {
			case Add:
				out[i] = ls[i] + rs[i]
			case Sub:
				out[i] = ls[i] - rs[i]
			case Mul:
				out[i] = ls[i] * rs[i]
			case Div:
				if rs[i] == 0 {
					return nil, fmt.Errorf("expr: division by zero at row %d", i)
				}
				out[i] = ls[i] / rs[i]
			}
		}
		return vector.FromInt64(out), nil
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		l := lv.Get(i).AsFloat()
		r := rv.Get(i).AsFloat()
		switch a.Op {
		case Add:
			out[i] = l + r
		case Sub:
			out[i] = l - r
		case Mul:
			out[i] = l * r
		case Div:
			if r == 0 {
				return nil, fmt.Errorf("expr: division by zero at row %d", i)
			}
			out[i] = l / r
		}
	}
	return vector.FromFloat64(out), nil
}
