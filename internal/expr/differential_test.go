package expr

import (
	"math/rand"
	"testing"

	"repro/internal/vector"
)

// TestRandomExprVectorizedVsRowAtATime generates random expression trees
// and checks that vectorized evaluation agrees with a row-at-a-time
// reference evaluator on every row — the core soundness property of the
// expression engine.
func TestRandomExprVectorizedVsRowAtATime(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	batch := randomBatch(rng, 64)
	for trial := 0; trial < 200; trial++ {
		e := randomBoolExpr(rng, 3)
		vec, err := e.Eval(batch)
		if err != nil {
			// Randomly generated trees can be ill-typed in ways the
			// generator does not prevent (none currently); fail loudly.
			t.Fatalf("trial %d: eval error for %s: %v", trial, e, err)
		}
		for row := 0; row < batch.Len(); row++ {
			want, err := evalRow(e, batch, row)
			if err != nil {
				t.Fatalf("trial %d row %d: reference eval: %v", trial, row, err)
			}
			if vec.Bools()[row] != want {
				t.Fatalf("trial %d row %d: vectorized %v != reference %v for %s",
					trial, row, vec.Bools()[row], want, e)
			}
		}
	}
}

// randomBatch builds a batch with int, float, string and time columns.
func randomBatch(rng *rand.Rand, n int) *vector.Batch {
	is := make([]int64, n)
	fs := make([]float64, n)
	ss := make([]string, n)
	ts := make([]int64, n)
	words := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < n; i++ {
		is[i] = int64(rng.Intn(21) - 10)
		fs[i] = float64(rng.Intn(200)-100) / 4
		ss[i] = words[rng.Intn(len(words))]
		ts[i] = int64(rng.Intn(1000))
	}
	return vector.NewBatch(
		vector.FromInt64(is), vector.FromFloat64(fs),
		vector.FromString(ss), vector.FromTime(ts),
	)
}

var batchKinds = []vector.Kind{
	vector.KindInt64, vector.KindFloat64, vector.KindString, vector.KindTime,
}

// randomBoolExpr builds a random boolean expression of bounded depth.
func randomBoolExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		return randomComparison(rng)
	}
	switch rng.Intn(3) {
	case 0:
		return &Logic{Op: OpAnd, L: randomBoolExpr(rng, depth-1), R: randomBoolExpr(rng, depth-1)}
	case 1:
		return &Logic{Op: OpOr, L: randomBoolExpr(rng, depth-1), R: randomBoolExpr(rng, depth-1)}
	default:
		return &Not{E: randomBoolExpr(rng, depth-1)}
	}
}

// randomComparison compares a column (or arithmetic over numeric
// columns) with a like-kinded constant or column.
func randomComparison(rng *rand.Rand) Expr {
	ops := []CmpOp{Eq, Ne, Lt, Le, Gt, Ge}
	op := ops[rng.Intn(len(ops))]
	col := rng.Intn(len(batchKinds))
	kind := batchKinds[col]
	left := Expr(&Col{Index: col, Name: "c", K: kind})
	if kind.Numeric() && rng.Intn(3) == 0 {
		other := rng.Intn(2) // another numeric column
		left = &Arith{
			Op: []ArithOp{Add, Sub, Mul}[rng.Intn(3)],
			L:  left,
			R:  &Col{Index: other, Name: "d", K: batchKinds[other]},
		}
	}
	var right Expr
	if rng.Intn(2) == 0 && left.Kind() == kind {
		// column vs column of the same kind
		right = &Col{Index: col, Name: "c2", K: kind}
	} else {
		switch left.Kind() {
		case vector.KindInt64:
			right = &Const{Val: vector.Int64(int64(rng.Intn(21) - 10))}
		case vector.KindFloat64:
			right = &Const{Val: vector.Float64(float64(rng.Intn(200)-100) / 4)}
		case vector.KindString:
			right = &Const{Val: vector.Str([]string{"alpha", "beta", "zz"}[rng.Intn(3)])}
		case vector.KindTime:
			right = &Const{Val: vector.Time(int64(rng.Intn(1000)))}
		}
	}
	return &Compare{Op: op, L: left, R: right}
}

// evalRow is the row-at-a-time reference evaluator.
func evalRow(e Expr, b *vector.Batch, row int) (bool, error) {
	v, err := evalRowValue(e, b, row)
	if err != nil {
		return false, err
	}
	return v.B, nil
}

func evalRowValue(e Expr, b *vector.Batch, row int) (vector.Value, error) {
	switch t := e.(type) {
	case *Col:
		return b.Cols[t.Index].Get(row), nil
	case *Const:
		return t.Val, nil
	case *Compare:
		l, err := evalRowValue(t.L, b, row)
		if err != nil {
			return vector.Value{}, err
		}
		r, err := evalRowValue(t.R, b, row)
		if err != nil {
			return vector.Value{}, err
		}
		return vector.Bool(t.Op.holds(vector.Compare(l, r))), nil
	case *Logic:
		l, err := evalRowValue(t.L, b, row)
		if err != nil {
			return vector.Value{}, err
		}
		r, err := evalRowValue(t.R, b, row)
		if err != nil {
			return vector.Value{}, err
		}
		if t.Op == OpAnd {
			return vector.Bool(l.B && r.B), nil
		}
		return vector.Bool(l.B || r.B), nil
	case *Not:
		v, err := evalRowValue(t.E, b, row)
		if err != nil {
			return vector.Value{}, err
		}
		return vector.Bool(!v.B), nil
	case *Arith:
		l, err := evalRowValue(t.L, b, row)
		if err != nil {
			return vector.Value{}, err
		}
		r, err := evalRowValue(t.R, b, row)
		if err != nil {
			return vector.Value{}, err
		}
		if t.Kind() == vector.KindInt64 {
			switch t.Op {
			case Add:
				return vector.Int64(l.AsInt() + r.AsInt()), nil
			case Sub:
				return vector.Int64(l.AsInt() - r.AsInt()), nil
			case Mul:
				return vector.Int64(l.AsInt() * r.AsInt()), nil
			}
		}
		switch t.Op {
		case Add:
			return vector.Float64(l.AsFloat() + r.AsFloat()), nil
		case Sub:
			return vector.Float64(l.AsFloat() - r.AsFloat()), nil
		case Mul:
			return vector.Float64(l.AsFloat() * r.AsFloat()), nil
		}
	}
	panic("unreachable reference evaluator case")
}
