package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/vector"
)

func testBatch() *vector.Batch {
	return vector.NewBatch(
		vector.FromInt64([]int64{1, 2, 3, 4}),
		vector.FromFloat64([]float64{0.5, 1.5, 2.5, 3.5}),
		vector.FromString([]string{"ISK", "APE", "ISK", "BUD"}),
		vector.FromTime([]int64{100, 200, 300, 400}),
	)
}

func col(i int, k vector.Kind) *Col { return &Col{Index: i, Name: "c", K: k} }

func evalBools(t *testing.T, e Expr, b *vector.Batch) []bool {
	t.Helper()
	v, err := e.Eval(b)
	if err != nil {
		t.Fatal(err)
	}
	return v.Bools()
}

func TestCompareIntScalar(t *testing.T) {
	b := testBatch()
	got := evalBools(t, &Compare{Op: Ge, L: col(0, vector.KindInt64), R: &Const{Val: vector.Int64(3)}}, b)
	want := []bool{false, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCompareFlippedConst(t *testing.T) {
	b := testBatch()
	// 3 > c0  ≡  c0 < 3
	got := evalBools(t, &Compare{Op: Gt, L: &Const{Val: vector.Int64(3)}, R: col(0, vector.KindInt64)}, b)
	want := []bool{true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCompareString(t *testing.T) {
	b := testBatch()
	got := evalBools(t, &Compare{Op: Eq, L: col(2, vector.KindString), R: &Const{Val: vector.Str("ISK")}}, b)
	want := []bool{true, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d mismatch", i)
		}
	}
}

func TestCompareTimeRange(t *testing.T) {
	b := testBatch()
	e := &Logic{Op: OpAnd,
		L: &Compare{Op: Gt, L: col(3, vector.KindTime), R: &Const{Val: vector.Time(100)}},
		R: &Compare{Op: Lt, L: col(3, vector.KindTime), R: &Const{Val: vector.Time(400)}},
	}
	got := evalBools(t, e, b)
	want := []bool{false, true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d mismatch", i)
		}
	}
}

func TestCompareMixedNumeric(t *testing.T) {
	b := testBatch()
	// int column vs float constant
	got := evalBools(t, &Compare{Op: Gt, L: col(0, vector.KindInt64), R: &Const{Val: vector.Float64(2.5)}}, b)
	want := []bool{false, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d mismatch", i)
		}
	}
	// float column vs int constant
	got = evalBools(t, &Compare{Op: Le, L: col(1, vector.KindFloat64), R: &Const{Val: vector.Int64(2)}}, b)
	want = []bool{true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("float-vs-int row %d mismatch", i)
		}
	}
}

func TestCompareVecVec(t *testing.T) {
	b := vector.NewBatch(
		vector.FromInt64([]int64{1, 5, 3}),
		vector.FromInt64([]int64{2, 5, 1}),
	)
	got := evalBools(t, &Compare{Op: Lt, L: col(0, vector.KindInt64), R: col(1, vector.KindInt64)}, b)
	want := []bool{true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d mismatch", i)
		}
	}
}

func TestCompareKindMismatch(t *testing.T) {
	b := testBatch()
	e := &Compare{Op: Eq, L: col(2, vector.KindString), R: &Const{Val: vector.Int64(1)}}
	if _, err := e.Eval(b); err == nil {
		t.Error("string = int comparison accepted")
	}
}

func TestLogicOrAndNot(t *testing.T) {
	b := testBatch()
	isISK := &Compare{Op: Eq, L: col(2, vector.KindString), R: &Const{Val: vector.Str("ISK")}}
	big := &Compare{Op: Ge, L: col(0, vector.KindInt64), R: &Const{Val: vector.Int64(4)}}
	got := evalBools(t, &Logic{Op: OpOr, L: isISK, R: big}, b)
	want := []bool{true, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("OR row %d mismatch", i)
		}
	}
	got = evalBools(t, &Not{E: isISK}, b)
	for i := range got {
		if got[i] == (b.Cols[2].Strings()[i] == "ISK") {
			t.Errorf("NOT row %d mismatch", i)
		}
	}
}

func TestLogicTypeErrors(t *testing.T) {
	b := testBatch()
	bad := &Logic{Op: OpAnd, L: col(0, vector.KindInt64), R: col(0, vector.KindInt64)}
	if _, err := bad.Eval(b); err == nil {
		t.Error("AND over ints accepted")
	}
	if _, err := (&Not{E: col(0, vector.KindInt64)}).Eval(b); err == nil {
		t.Error("NOT over int accepted")
	}
}

func TestArithIntAndFloat(t *testing.T) {
	b := testBatch()
	sum := &Arith{Op: Add, L: col(0, vector.KindInt64), R: &Const{Val: vector.Int64(10)}}
	v, err := sum.Eval(b)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind() != vector.KindInt64 || v.Int64s()[2] != 13 {
		t.Errorf("int add = %v", v.Int64s())
	}
	mixed := &Arith{Op: Mul, L: col(0, vector.KindInt64), R: col(1, vector.KindFloat64)}
	v, err = mixed.Eval(b)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind() != vector.KindFloat64 || v.Float64s()[1] != 3.0 {
		t.Errorf("mixed mul = %v", v.Float64s())
	}
}

func TestArithDivZero(t *testing.T) {
	b := vector.NewBatch(vector.FromInt64([]int64{1}), vector.FromInt64([]int64{0}))
	div := &Arith{Op: Div, L: col(0, vector.KindInt64), R: col(1, vector.KindInt64)}
	if _, err := div.Eval(b); err == nil {
		t.Error("integer division by zero accepted")
	}
	fb := vector.NewBatch(vector.FromFloat64([]float64{1}), vector.FromFloat64([]float64{0}))
	fdiv := &Arith{Op: Div, L: col(0, vector.KindFloat64), R: col(1, vector.KindFloat64)}
	if _, err := fdiv.Eval(fb); err == nil {
		t.Error("float division by zero accepted")
	}
}

func TestSplitJoinAndRoundTrip(t *testing.T) {
	a := &Compare{Op: Eq, L: col(0, vector.KindInt64), R: &Const{Val: vector.Int64(1)}}
	b := &Compare{Op: Eq, L: col(1, vector.KindFloat64), R: &Const{Val: vector.Float64(2)}}
	c := &Compare{Op: Eq, L: col(2, vector.KindString), R: &Const{Val: vector.Str("x")}}
	e := JoinAnd([]Expr{a, b, c})
	parts := SplitAnd(e)
	if len(parts) != 3 {
		t.Fatalf("SplitAnd returned %d conjuncts, want 3", len(parts))
	}
	if JoinAnd(nil) != nil {
		t.Error("JoinAnd(nil) should be nil")
	}
	// OR must not be split.
	or := &Logic{Op: OpOr, L: a, R: b}
	if len(SplitAnd(or)) != 1 {
		t.Error("SplitAnd split an OR")
	}
}

func TestColsAndRemap(t *testing.T) {
	e := &Logic{Op: OpAnd,
		L: &Compare{Op: Eq, L: &Col{Index: 3, Name: "x", K: vector.KindInt64}, R: &Const{Val: vector.Int64(1)}},
		R: &Compare{Op: Lt, L: &Col{Index: 1, Name: "y", K: vector.KindInt64}, R: &Col{Index: 3, Name: "x", K: vector.KindInt64}},
	}
	cols := Cols(e)
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 3 {
		t.Fatalf("Cols = %v, want [1 3]", cols)
	}
	remapped, ok := Remap(e, map[int]int{1: 0, 3: 1})
	if !ok {
		t.Fatal("Remap failed")
	}
	cols = Cols(remapped)
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 1 {
		t.Errorf("remapped Cols = %v, want [0 1]", cols)
	}
	if _, ok := Remap(e, map[int]int{1: 0}); ok {
		t.Error("Remap succeeded with missing mapping")
	}
}

func TestStringRendering(t *testing.T) {
	e := &Logic{Op: OpAnd,
		L: &Compare{Op: Eq, L: &Col{Index: 0, Name: "F.station", K: vector.KindString}, R: &Const{Val: vector.Str("ISK")}},
		R: &Compare{Op: Gt, L: &Col{Index: 1, Name: "D.t", K: vector.KindTime}, R: &Const{Val: vector.Time(0)}},
	}
	s := e.String()
	for _, want := range []string{"F.station", "= 'ISK'", "AND", "D.t >"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestCmpScalarAgainstNaiveProperty(t *testing.T) {
	f := func(xs []int64, x int64) bool {
		b := vector.NewBatch(vector.FromInt64(xs))
		for _, op := range []CmpOp{Eq, Ne, Lt, Le, Gt, Ge} {
			e := &Compare{Op: op, L: col(0, vector.KindInt64), R: &Const{Val: vector.Int64(x)}}
			v, err := e.Eval(b)
			if err != nil {
				return false
			}
			for i, a := range xs {
				if v.Bools()[i] != op.holds(vector.Compare(vector.Int64(a), vector.Int64(x))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConstBroadcast(t *testing.T) {
	b := testBatch()
	v, err := (&Const{Val: vector.Int64(7)}).Eval(b)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 4 || v.Int64s()[3] != 7 {
		t.Error("const broadcast wrong")
	}
}

func TestColOutOfRange(t *testing.T) {
	b := testBatch()
	if _, err := (&Col{Index: 99, Name: "x", K: vector.KindInt64}).Eval(b); err == nil {
		t.Error("out-of-range column accepted")
	}
}
