// Package expr implements bound, vectorized scalar expressions: column
// references, constants, comparisons, boolean connectives and arithmetic.
// Expressions are bound to column positions of the operator input they
// evaluate against (binding happens in internal/plan).
package expr

import (
	"fmt"
	"strings"

	"repro/internal/vector"
)

// Expr is a bound scalar expression evaluable against a batch.
type Expr interface {
	// Kind is the result kind of the expression.
	Kind() vector.Kind
	// Eval evaluates the expression over every row of the batch.
	Eval(b *vector.Batch) (*vector.Vector, error)
	// String renders the expression for plan display.
	String() string
	// Walk visits this node and all children depth-first.
	Walk(fn func(Expr))
}

// Col references a column of the input batch by position.
type Col struct {
	Index int
	Name  string // display name, e.g. "F.station"
	K     vector.Kind
}

// Kind implements Expr.
func (c *Col) Kind() vector.Kind { return c.K }

// Eval implements Expr.
func (c *Col) Eval(b *vector.Batch) (*vector.Vector, error) {
	if c.Index < 0 || c.Index >= b.NumCols() {
		return nil, fmt.Errorf("expr: column %s bound to position %d of %d-column batch",
			c.Name, c.Index, b.NumCols())
	}
	return b.Cols[c.Index], nil
}

// String implements Expr.
func (c *Col) String() string { return c.Name }

// Walk implements Expr.
func (c *Col) Walk(fn func(Expr)) { fn(c) }

// Const is a literal value.
type Const struct {
	Val vector.Value
}

// Kind implements Expr.
func (c *Const) Kind() vector.Kind { return c.Val.Kind }

// Eval broadcasts the constant over the batch length.
func (c *Const) Eval(b *vector.Batch) (*vector.Vector, error) {
	n := b.Len()
	out := vector.New(c.Val.Kind, n)
	for i := 0; i < n; i++ {
		out.AppendValue(c.Val)
	}
	return out, nil
}

// String implements Expr.
func (c *Const) String() string {
	if c.Val.Kind == vector.KindString || c.Val.Kind == vector.KindTime {
		return "'" + c.Val.String() + "'"
	}
	return c.Val.String()
}

// Walk implements Expr.
func (c *Const) Walk(fn func(Expr)) { fn(c) }

// CmpOp enumerates comparison operators.
type CmpOp int

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (op CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[op]
}

// holds reports whether cmp (a vector.Compare result) satisfies op.
func (op CmpOp) holds(cmp int) bool {
	switch op {
	case Eq:
		return cmp == 0
	case Ne:
		return cmp != 0
	case Lt:
		return cmp < 0
	case Le:
		return cmp <= 0
	case Gt:
		return cmp > 0
	case Ge:
		return cmp >= 0
	}
	return false
}

// Compare is a binary comparison producing a boolean vector.
type Compare struct {
	Op   CmpOp
	L, R Expr
}

// Kind implements Expr.
func (c *Compare) Kind() vector.Kind { return vector.KindBool }

// String implements Expr.
func (c *Compare) String() string {
	return fmt.Sprintf("%s %s %s", c.L.String(), c.Op, c.R.String())
}

// Walk implements Expr.
func (c *Compare) Walk(fn func(Expr)) { fn(c); c.L.Walk(fn); c.R.Walk(fn) }

// Eval implements Expr with fast paths for vector-vs-constant compares of
// matching kinds (the hot shape in selection predicates).
func (c *Compare) Eval(b *vector.Batch) (*vector.Vector, error) {
	if rc, ok := c.R.(*Const); ok {
		lv, err := c.L.Eval(b)
		if err != nil {
			return nil, err
		}
		return cmpVecScalar(c.Op, lv, rc.Val)
	}
	if lc, ok := c.L.(*Const); ok {
		lv, err := c.R.Eval(b)
		if err != nil {
			return nil, err
		}
		return cmpVecScalar(flip(c.Op), lv, lc.Val)
	}
	lv, err := c.L.Eval(b)
	if err != nil {
		return nil, err
	}
	rv, err := c.R.Eval(b)
	if err != nil {
		return nil, err
	}
	return cmpVecVec(c.Op, lv, rv)
}

// flip mirrors an operator across its arguments: a OP b == b flip(OP) a.
func flip(op CmpOp) CmpOp {
	switch op {
	case Lt:
		return Gt
	case Le:
		return Ge
	case Gt:
		return Lt
	case Ge:
		return Le
	default:
		return op
	}
}

func cmpVecScalar(op CmpOp, v *vector.Vector, val vector.Value) (*vector.Vector, error) {
	n := v.Len()
	out := make([]bool, n)
	switch {
	case (v.Kind() == vector.KindInt64 || v.Kind() == vector.KindTime) &&
		(val.Kind == vector.KindInt64 || val.Kind == vector.KindTime):
		x := val.I
		for i, a := range v.Int64s() {
			switch op {
			case Eq:
				out[i] = a == x
			case Ne:
				out[i] = a != x
			case Lt:
				out[i] = a < x
			case Le:
				out[i] = a <= x
			case Gt:
				out[i] = a > x
			case Ge:
				out[i] = a >= x
			}
		}
	case v.Kind() == vector.KindFloat64 && val.IsNumeric():
		x := val.AsFloat()
		for i, a := range v.Float64s() {
			switch op {
			case Eq:
				out[i] = a == x
			case Ne:
				out[i] = a != x
			case Lt:
				out[i] = a < x
			case Le:
				out[i] = a <= x
			case Gt:
				out[i] = a > x
			case Ge:
				out[i] = a >= x
			}
		}
	case (v.Kind() == vector.KindInt64 || v.Kind() == vector.KindTime) && val.Kind == vector.KindFloat64:
		x := val.F
		for i, a := range v.Int64s() {
			af := float64(a)
			switch op {
			case Eq:
				out[i] = af == x
			case Ne:
				out[i] = af != x
			case Lt:
				out[i] = af < x
			case Le:
				out[i] = af <= x
			case Gt:
				out[i] = af > x
			case Ge:
				out[i] = af >= x
			}
		}
	case v.Kind() == vector.KindString && val.Kind == vector.KindString:
		x := val.S
		for i, a := range v.Strings() {
			switch op {
			case Eq:
				out[i] = a == x
			case Ne:
				out[i] = a != x
			case Lt:
				out[i] = a < x
			case Le:
				out[i] = a <= x
			case Gt:
				out[i] = a > x
			case Ge:
				out[i] = a >= x
			}
		}
	case v.Kind() == vector.KindBool && val.Kind == vector.KindBool:
		for i, a := range v.Bools() {
			out[i] = op.holds(boolCmp(a, val.B))
		}
	default:
		return nil, fmt.Errorf("expr: cannot compare %s with %s", v.Kind(), val.Kind)
	}
	return vector.FromBool(out), nil
}

func boolCmp(a, b bool) int {
	switch {
	case a == b:
		return 0
	case !a:
		return -1
	default:
		return 1
	}
}

func cmpVecVec(op CmpOp, l, r *vector.Vector) (*vector.Vector, error) {
	if l.Len() != r.Len() {
		return nil, fmt.Errorf("expr: compare of %d against %d rows", l.Len(), r.Len())
	}
	n := l.Len()
	out := make([]bool, n)
	lk, rk := l.Kind(), r.Kind()
	intish := func(k vector.Kind) bool { return k == vector.KindInt64 || k == vector.KindTime }
	switch {
	case intish(lk) && intish(rk):
		ls, rs := l.Int64s(), r.Int64s()
		for i := range ls {
			switch op {
			case Eq:
				out[i] = ls[i] == rs[i]
			case Ne:
				out[i] = ls[i] != rs[i]
			case Lt:
				out[i] = ls[i] < rs[i]
			case Le:
				out[i] = ls[i] <= rs[i]
			case Gt:
				out[i] = ls[i] > rs[i]
			case Ge:
				out[i] = ls[i] >= rs[i]
			}
		}
	case lk == vector.KindString && rk == vector.KindString:
		ls, rs := l.Strings(), r.Strings()
		for i := range ls {
			out[i] = op.holds(strings.Compare(ls[i], rs[i]))
		}
	case (intish(lk) || lk == vector.KindFloat64) && (intish(rk) || rk == vector.KindFloat64):
		for i := 0; i < n; i++ {
			out[i] = op.holds(vector.Compare(l.Get(i), r.Get(i)))
		}
	case lk == vector.KindBool && rk == vector.KindBool:
		ls, rs := l.Bools(), r.Bools()
		for i := range ls {
			out[i] = op.holds(boolCmp(ls[i], rs[i]))
		}
	default:
		return nil, fmt.Errorf("expr: cannot compare %s with %s", lk, rk)
	}
	return vector.FromBool(out), nil
}
