package derived

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/plan"
	"repro/internal/vector"
)

// observedStore builds a store with two records of one file:
// record 0 spans [0, 90] with values 1..10, record 1 spans [100, 190]
// with values 11..20.
func observedStore() *Store {
	s := NewStore()
	rids := make([]int64, 20)
	spans := make([]int64, 20)
	vals := make([]float64, 20)
	for i := 0; i < 20; i++ {
		rids[i] = int64(i / 10)
		spans[i] = int64(i%10)*10 + int64(i/10)*100
		vals[i] = float64(i + 1)
	}
	b := vector.NewBatch(vector.FromInt64(rids), vector.FromTime(spans), vector.FromFloat64(vals))
	s.Observe("f.mseed", b, 0, 1, 2)
	return s
}

func refs() []RecordRef {
	return []RecordRef{
		{URI: "f.mseed", RecordID: 0, SpanLo: 0, SpanHi: 90},
		{URI: "f.mseed", RecordID: 1, SpanLo: 100, SpanHi: 190},
	}
}

func TestObserveSummaries(t *testing.T) {
	s := observedStore()
	if s.Len() != 2 {
		t.Fatalf("summaries = %d, want 2", s.Len())
	}
	rs, ok := s.Lookup("f.mseed", 0)
	if !ok {
		t.Fatal("record 0 missing")
	}
	if rs.Count != 10 || rs.Sum != 55 || rs.Min != 1 || rs.Max != 10 {
		t.Errorf("summary = %+v", rs)
	}
	if rs.SpanLo != 0 || rs.SpanHi != 90 {
		t.Errorf("span = [%d,%d]", rs.SpanLo, rs.SpanHi)
	}
}

func TestAnswerFullCoverage(t *testing.T) {
	s := observedStore()
	v, ok := s.Answer(refs(), 0, 190, plan.AggAvg)
	if !ok {
		t.Fatal("full-coverage answer failed")
	}
	if math.Abs(v.AsFloat()-10.5) > 1e-9 {
		t.Errorf("AVG = %v, want 10.5", v)
	}
	v, _ = s.Answer(refs(), 0, 190, plan.AggSum)
	if v.AsFloat() != 210 {
		t.Errorf("SUM = %v, want 210", v)
	}
	v, _ = s.Answer(refs(), 0, 190, plan.AggCount)
	if v.AsInt() != 20 {
		t.Errorf("COUNT = %v, want 20", v)
	}
	v, _ = s.Answer(refs(), 0, 190, plan.AggMin)
	if v.AsFloat() != 1 {
		t.Errorf("MIN = %v", v)
	}
	v, _ = s.Answer(refs(), 0, 190, plan.AggMax)
	if v.AsFloat() != 20 {
		t.Errorf("MAX = %v", v)
	}
}

func TestAnswerSkipsDisjointRecords(t *testing.T) {
	s := observedStore()
	// Window covers only record 1.
	v, ok := s.Answer(refs(), 95, 200, plan.AggSum)
	if !ok {
		t.Fatal("answer failed")
	}
	if v.AsFloat() != 155 { // 11+..+20
		t.Errorf("SUM = %v, want 155", v)
	}
}

func TestAnswerRefusesPartialCoverage(t *testing.T) {
	s := observedStore()
	if _, ok := s.Answer(refs(), 0, 50, plan.AggAvg); ok {
		t.Error("partial record coverage must refuse (needs actual data)")
	}
}

func TestAnswerRefusesUnsummarizedRecord(t *testing.T) {
	s := observedStore()
	more := append(refs(), RecordRef{URI: "g.mseed", RecordID: 0, SpanLo: 0, SpanHi: 90})
	if _, ok := s.Answer(more, 0, 190, plan.AggAvg); ok {
		t.Error("answer used a record that was never mounted")
	}
}

func TestAnswerEmptyWindow(t *testing.T) {
	s := observedStore()
	v, ok := s.Answer(refs(), 1000, 2000, plan.AggCount)
	if !ok || v.AsInt() != 0 {
		t.Errorf("empty-window COUNT = %v, ok=%v", v, ok)
	}
	v, ok = s.Answer(refs(), 1000, 2000, plan.AggAvg)
	if !ok || v.AsFloat() != 0 {
		t.Error("empty-window AVG should be 0")
	}
}

func TestAnswerMatchesDirectComputationProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		n := len(raw)
		s := NewStore()
		rids := make([]int64, n)
		spans := make([]int64, n)
		vals := make([]float64, n)
		var sum float64
		for i, v := range raw {
			rids[i] = 0
			spans[i] = int64(i)
			vals[i] = float64(v)
			sum += float64(v)
		}
		s.Observe("p", vector.NewBatch(
			vector.FromInt64(rids), vector.FromTime(spans), vector.FromFloat64(vals)), 0, 1, 2)
		ref := []RecordRef{{URI: "p", RecordID: 0, SpanLo: 0, SpanHi: int64(n - 1)}}
		got, ok := s.Answer(ref, 0, int64(n-1), plan.AggSum)
		return ok && math.Abs(got.AsFloat()-sum) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFindGaps(t *testing.T) {
	recs := []RecordRef{
		{URI: "a", RecordID: 0, SpanLo: 0, SpanHi: 100},
		{URI: "a", RecordID: 1, SpanLo: 125, SpanHi: 200}, // gap of 25
		{URI: "a", RecordID: 2, SpanLo: 201, SpanHi: 300}, // gap of 1
		{URI: "b", RecordID: 0, SpanLo: 5000, SpanHi: 6000},
	}
	gaps := FindGaps(recs, 10)
	if len(gaps) != 1 {
		t.Fatalf("gaps = %+v, want 1", gaps)
	}
	if gaps[0].AfterRec != 0 || gaps[0].Lo != 100 || gaps[0].Hi != 125 {
		t.Errorf("gap = %+v", gaps[0])
	}
}

func TestFindOverlaps(t *testing.T) {
	recs := []RecordRef{
		{URI: "a", RecordID: 0, SpanLo: 0, SpanHi: 100},
		{URI: "a", RecordID: 1, SpanLo: 90, SpanHi: 200},
		{URI: "a", RecordID: 2, SpanLo: 201, SpanHi: 300},
	}
	ovs := FindOverlaps(recs)
	if len(ovs) != 1 {
		t.Fatalf("overlaps = %+v, want 1", ovs)
	}
	if ovs[0].RecA != 0 || ovs[0].RecB != 1 || ovs[0].Lo != 90 || ovs[0].Hi != 100 {
		t.Errorf("overlap = %+v", ovs[0])
	}
}

func TestObserveEmptyBatch(t *testing.T) {
	s := NewStore()
	s.Observe("e", vector.NewBatch(
		vector.FromInt64(nil), vector.FromTime(nil), vector.FromFloat64(nil)), 0, 1, 2)
	if s.Len() != 0 {
		t.Error("empty batch created summaries")
	}
}

func TestObserveReplacesOnRemount(t *testing.T) {
	s := NewStore()
	mk := func(val float64) *vector.Batch {
		return vector.NewBatch(
			vector.FromInt64([]int64{0}), vector.FromTime([]int64{5}), vector.FromFloat64([]float64{val}))
	}
	s.Observe("f", mk(1), 0, 1, 2)
	s.Observe("f", mk(9), 0, 1, 2)
	rs, _ := s.Lookup("f", 0)
	if rs.Sum != 9 || rs.Count != 1 {
		t.Errorf("remount did not replace summary: %+v", rs)
	}
}
