// Package derived implements derived metadata (paper §5, "Extending
// metadata"): summary statistics computed as a side-effect of ALi,
// without the explorer noticing, and consulted later to answer summary
// queries without re-mounting the same files.
//
// The store keeps one summary per (file, record): count, sum, min, max of
// the value column plus the record's span. A later aggregate query whose
// selection covers each record of interest either fully or not at all can
// be answered purely from these summaries.
package derived

import (
	"math"
	"sync"

	"repro/internal/plan"
	"repro/internal/vector"
)

// RecordSummary is the derived metadata of one mounted record.
type RecordSummary struct {
	URI      string
	RecordID int64
	Count    int64
	Sum      float64
	Min, Max float64
	SpanLo   int64
	SpanHi   int64
}

type key struct {
	uri string
	rid int64
}

// Store holds record summaries. It is safe for concurrent use.
type Store struct {
	mu sync.RWMutex
	m  map[key]RecordSummary
}

// NewStore returns an empty derived-metadata store.
func NewStore() *Store {
	return &Store{m: make(map[key]RecordSummary)}
}

// Len returns the number of summarized records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Observe summarizes a mounted batch. The column positions identify the
// record id, span (time) and value columns of the data-table schema; the
// batch must be the FULL mounted file (before selections) so summaries
// describe whole records.
func (s *Store) Observe(uri string, b *vector.Batch, ridCol, spanCol, valCol int) {
	n := b.Len()
	if n == 0 {
		return
	}
	rids := b.Cols[ridCol].Int64s()
	spans := b.Cols[spanCol].Int64s()
	vals := b.Cols[valCol].Float64s()

	acc := make(map[int64]*RecordSummary)
	for i := 0; i < n; i++ {
		rs, ok := acc[rids[i]]
		if !ok {
			rs = &RecordSummary{
				URI: uri, RecordID: rids[i],
				Min: math.Inf(1), Max: math.Inf(-1),
				SpanLo: math.MaxInt64, SpanHi: math.MinInt64,
			}
			acc[rids[i]] = rs
		}
		rs.Count++
		rs.Sum += vals[i]
		if vals[i] < rs.Min {
			rs.Min = vals[i]
		}
		if vals[i] > rs.Max {
			rs.Max = vals[i]
		}
		if spans[i] < rs.SpanLo {
			rs.SpanLo = spans[i]
		}
		if spans[i] > rs.SpanHi {
			rs.SpanHi = spans[i]
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rs := range acc {
		s.m[key{rs.URI, rs.RecordID}] = *rs
	}
}

// Lookup returns the summary of one record.
func (s *Store) Lookup(uri string, recordID int64) (RecordSummary, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rs, ok := s.m[key{uri, recordID}]
	return rs, ok
}

// RecordRef identifies one record of interest (from the metadata stage)
// with its span bounds.
type RecordRef struct {
	URI      string
	RecordID int64
	SpanLo   int64
	SpanHi   int64
}

// Answer attempts to compute an aggregate over the value column from
// summaries alone. The query's selection restricts the span column to
// [spanLo, spanHi]. The attempt succeeds only when every record of
// interest is either entirely inside the span (its summary contributes)
// or entirely outside (it is skipped); a partially covered record would
// require actual data, so Answer reports ok=false and the engine falls
// back to ALi.
func (s *Store) Answer(records []RecordRef, spanLo, spanHi int64, fn plan.AggFunc) (vector.Value, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var count int64
	var sum float64
	min, max := math.Inf(1), math.Inf(-1)
	for _, r := range records {
		if r.SpanLo > spanHi || r.SpanHi < spanLo {
			continue // disjoint: contributes nothing
		}
		if r.SpanLo < spanLo || r.SpanHi > spanHi {
			return vector.Value{}, false // partial coverage: need actual data
		}
		rs, ok := s.m[key{r.URI, r.RecordID}]
		if !ok {
			return vector.Value{}, false // never mounted: no summary yet
		}
		count += rs.Count
		sum += rs.Sum
		if rs.Min < min {
			min = rs.Min
		}
		if rs.Max > max {
			max = rs.Max
		}
	}
	switch fn {
	case plan.AggCount:
		return vector.Int64(count), true
	case plan.AggSum:
		return vector.Float64(sum), true
	case plan.AggAvg:
		if count == 0 {
			return vector.Float64(0), true
		}
		return vector.Float64(sum / float64(count)), true
	case plan.AggMin:
		if count == 0 {
			return vector.Int64(0), true
		}
		return vector.Float64(min), true
	case plan.AggMax:
		if count == 0 {
			return vector.Int64(0), true
		}
		return vector.Float64(max), true
	}
	return vector.Value{}, false
}

// Gap is a hole in record coverage — classic "analyzed" derived metadata
// (paper §5 cites gaps and overlaps as examples).
type Gap struct {
	URI      string
	AfterRec int64
	Lo, Hi   int64 // the uncovered interval (exclusive bounds)
}

// FindGaps detects gaps between consecutive records of the same file.
// Records must be passed grouped by URI and sorted by SpanLo; tolerance
// is the largest allowed hole (e.g. one sample period) before a gap is
// reported.
func FindGaps(records []RecordRef, tolerance int64) []Gap {
	var out []Gap
	for i := 1; i < len(records); i++ {
		prev, cur := records[i-1], records[i]
		if prev.URI != cur.URI {
			continue
		}
		if cur.SpanLo-prev.SpanHi > tolerance {
			out = append(out, Gap{
				URI: cur.URI, AfterRec: prev.RecordID,
				Lo: prev.SpanHi, Hi: cur.SpanLo,
			})
		}
	}
	return out
}

// Overlap is the converse of Gap: two records covering the same instants.
type Overlap struct {
	URI        string
	RecA, RecB int64
	Lo, Hi     int64
}

// FindOverlaps detects overlapping consecutive records (same ordering
// contract as FindGaps).
func FindOverlaps(records []RecordRef) []Overlap {
	var out []Overlap
	for i := 1; i < len(records); i++ {
		prev, cur := records[i-1], records[i]
		if prev.URI != cur.URI {
			continue
		}
		if cur.SpanLo <= prev.SpanHi {
			hi := prev.SpanHi
			if cur.SpanHi < hi {
				hi = cur.SpanHi
			}
			out = append(out, Overlap{
				URI: cur.URI, RecA: prev.RecordID, RecB: cur.RecordID,
				Lo: cur.SpanLo, Hi: hi,
			})
		}
	}
	return out
}
