package derived

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/plan"
	"repro/internal/vector"
)

// TestConcurrentObserveLookup hammers the store from concurrent
// observers and readers — the shape the statistics-free planner
// creates, where parallel Stage-2 mounts Observe while the next query's
// Stage-1 pruning pass Lookups. Run under -race this pins the store's
// synchronization; the final state must contain every observation.
func TestConcurrentObserveLookup(t *testing.T) {
	s := NewStore()
	const writers, files, recs = 4, 8, 4

	batchFor := func(fi, ri int) *vector.Batch {
		rids := vector.New(vector.KindInt64, 0)
		spans := vector.New(vector.KindTime, 0)
		vals := vector.New(vector.KindFloat64, 0)
		for k := 0; k < 10; k++ {
			rids.AppendInt64(int64(ri))
			spans.AppendValue(vector.Time(int64(ri*100 + k)))
			vals.AppendFloat64(float64(fi + k))
		}
		return vector.NewBatch(rids, spans, vals)
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for fi := 0; fi < files; fi++ {
				uri := fmt.Sprintf("file-%d", fi)
				for ri := 0; ri < recs; ri++ {
					s.Observe(uri, batchFor(fi, ri), 0, 1, 2)
				}
			}
		}(w)
	}
	// Readers exercise Lookup, Answer and Len concurrently with the
	// writes; values may be mid-population but must never be torn.
	for r := 0; r < writers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				uri := fmt.Sprintf("file-%d", i%files)
				if rs, ok := s.Lookup(uri, int64(i%recs)); ok {
					if rs.Count != 10 {
						t.Errorf("torn summary: Count = %d, want 10", rs.Count)
						return
					}
				}
				s.Answer([]RecordRef{{URI: uri, RecordID: 0, SpanLo: 0, SpanHi: 99}},
					0, 99, plan.AggCount)
				s.Len()
			}
		}()
	}
	wg.Wait()

	if got, want := s.Len(), files*recs; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	for fi := 0; fi < files; fi++ {
		for ri := 0; ri < recs; ri++ {
			rs, ok := s.Lookup(fmt.Sprintf("file-%d", fi), int64(ri))
			if !ok || rs.Count != 10 {
				t.Fatalf("file-%d/%d missing or wrong after concurrent observes: %+v ok=%v",
					fi, ri, rs, ok)
			}
		}
	}
}
