// Package mseed implements the repository file format of the
// reproduction: a miniSEED-like binary format of self-describing records,
// each carrying a small metadata header and a Steim-style delta-compressed
// waveform payload.
//
// Real miniSEED (the subset of SEED the paper uses) stores time series as
// frames of delta-encoded samples packed at 8/16/32-bit widths chosen per
// word (Steim-1 compression). This package reimplements that scheme from
// scratch: frames are 64 bytes (sixteen 32-bit words), word 0 holds 2-bit
// width codes for the other fifteen words, and the first frame reserves
// two words for the forward (X0) and reverse (Xn) integration constants
// used to verify decode integrity — the same layout as Steim-1.
package mseed

import (
	"encoding/binary"
	"fmt"
)

// FrameSize is the size of one compression frame in bytes.
const FrameSize = 64

const wordsPerFrame = 16 // word 0 is the control word

// Width codes stored in the control word.
const (
	codeSkip  = 0 // word unused (control word, X0/Xn, or padding)
	codeBytes = 1 // four 8-bit deltas
	codeHalf  = 2 // two 16-bit deltas
	codeFull  = 3 // one 32-bit delta
)

// EncodeSteim compresses samples into a sequence of frames. The first
// frame stores X0 = samples[0] and Xn = samples[len-1]; deltas of
// consecutive samples are packed greedily at the narrowest width that
// fits. An empty input yields no frames.
func EncodeSteim(samples []int32) []byte {
	if len(samples) == 0 {
		return nil
	}
	deltas := make([]int32, len(samples)-1)
	for i := 1; i < len(samples); i++ {
		deltas[i-1] = samples[i] - samples[i-1]
	}

	var frames []byte
	var frame [FrameSize]byte
	var ctrl uint32
	word := 0 // next data word index within the frame (1..15)
	first := true

	flushFrame := func() {
		binary.BigEndian.PutUint32(frame[0:4], ctrl)
		frames = append(frames, frame[:]...)
		frame = [FrameSize]byte{}
		ctrl = 0
		word = 0
	}
	openFrame := func() {
		word = 1
		if first {
			binary.BigEndian.PutUint32(frame[4:8], uint32(samples[0]))
			binary.BigEndian.PutUint32(frame[8:12], uint32(samples[len(samples)-1]))
			word = 3
			first = false
		}
	}
	putWord := func(code int, w uint32) {
		if word == 0 {
			openFrame()
		}
		binary.BigEndian.PutUint32(frame[word*4:word*4+4], w)
		ctrl |= uint32(code) << (2 * (15 - word))
		word++
		if word == wordsPerFrame {
			flushFrame()
		}
	}

	fitsByte := func(d int32) bool { return d >= -128 && d <= 127 }
	fitsHalf := func(d int32) bool { return d >= -32768 && d <= 32767 }

	i := 0
	for i < len(deltas) {
		switch {
		case i+3 < len(deltas) &&
			fitsByte(deltas[i]) && fitsByte(deltas[i+1]) && fitsByte(deltas[i+2]) && fitsByte(deltas[i+3]):
			w := uint32(uint8(int8(deltas[i])))<<24 |
				uint32(uint8(int8(deltas[i+1])))<<16 |
				uint32(uint8(int8(deltas[i+2])))<<8 |
				uint32(uint8(int8(deltas[i+3])))
			putWord(codeBytes, w)
			i += 4
		case i+1 < len(deltas) && fitsHalf(deltas[i]) && fitsHalf(deltas[i+1]):
			w := uint32(uint16(int16(deltas[i])))<<16 | uint32(uint16(int16(deltas[i+1])))
			putWord(codeHalf, w)
			i += 2
		default:
			putWord(codeFull, uint32(deltas[i]))
			i++
		}
	}
	if first {
		// Single-sample record: emit the frame holding X0/Xn only.
		openFrame()
	}
	if word != 0 {
		flushFrame()
	}
	return frames
}

// DecodeSteim decompresses frames into exactly nsamples samples. It
// verifies the reverse integration constant and fails loudly on
// corruption — a mount must never silently produce wrong data.
func DecodeSteim(frames []byte, nsamples int) ([]int32, error) {
	if nsamples == 0 {
		return nil, nil
	}
	if len(frames)%FrameSize != 0 {
		return nil, fmt.Errorf("mseed: frame data length %d not a multiple of %d", len(frames), FrameSize)
	}
	if len(frames) == 0 {
		return nil, fmt.Errorf("mseed: no frames for %d samples", nsamples)
	}
	x0 := int32(binary.BigEndian.Uint32(frames[4:8]))
	xn := int32(binary.BigEndian.Uint32(frames[8:12]))

	out := make([]int32, 0, nsamples)
	out = append(out, x0)
	cur := x0
	need := nsamples - 1

	appendDelta := func(d int32) {
		if need <= 0 {
			return
		}
		cur += d
		out = append(out, cur)
		need--
	}

	for fi := 0; fi < len(frames)/FrameSize; fi++ {
		frame := frames[fi*FrameSize : (fi+1)*FrameSize]
		ctrl := binary.BigEndian.Uint32(frame[0:4])
		startWord := 1
		if fi == 0 {
			startWord = 3 // skip X0, Xn
		}
		for w := startWord; w < wordsPerFrame; w++ {
			code := (ctrl >> (2 * (15 - w))) & 3
			word := binary.BigEndian.Uint32(frame[w*4 : w*4+4])
			switch code {
			case codeSkip:
				continue
			case codeBytes:
				appendDelta(int32(int8(word >> 24)))
				appendDelta(int32(int8(word >> 16)))
				appendDelta(int32(int8(word >> 8)))
				appendDelta(int32(int8(word)))
			case codeHalf:
				appendDelta(int32(int16(word >> 16)))
				appendDelta(int32(int16(word)))
			case codeFull:
				appendDelta(int32(word))
			}
		}
	}
	if need > 0 {
		return nil, fmt.Errorf("mseed: frames decode to %d samples, header says %d", nsamples-need, nsamples)
	}
	if out[len(out)-1] != xn {
		return nil, fmt.Errorf("mseed: reverse integration constant mismatch: decoded %d, stored %d",
			out[len(out)-1], xn)
	}
	return out, nil
}
