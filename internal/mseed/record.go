package mseed

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"
)

// Magic identifies a record header.
var Magic = [4]byte{'M', 'S', 'R', '1'}

// HeaderSize is the fixed on-disk size of a record header.
const HeaderSize = 48

// Header is the self-describing metadata carried by every record: the
// stream identity, timing, and payload geometry. This is the "(small)
// metadata accompanying (big) actual data" that the paper's first
// execution stage operates on.
type Header struct {
	Seq        uint32  // record sequence number within the file
	Network    string  // 2-char network code, e.g. "NL"
	Station    string  // up to 5-char station code, e.g. "ISK"
	Location   string  // 2-char location code, may be blank
	Channel    string  // 3-char channel code, e.g. "BHE"
	StartTime  int64   // first sample time, epoch nanoseconds UTC
	SampleRate float64 // samples per second
	NSamples   int     // number of samples in the payload
	FrameBytes int     // compressed payload size in bytes
}

// EndTime returns the time of the last sample.
func (h Header) EndTime() int64 {
	if h.NSamples <= 1 || h.SampleRate <= 0 {
		return h.StartTime
	}
	return h.StartTime + int64(float64(h.NSamples-1)/h.SampleRate*float64(time.Second))
}

// SampleTime returns the time of sample i.
func (h Header) SampleTime(i int) int64 {
	return h.StartTime + int64(float64(i)/h.SampleRate*float64(time.Second))
}

// Record is a decoded record: header plus samples.
type Record struct {
	Header
	Samples []int32
}

func putPadded(dst []byte, s string) {
	for i := range dst {
		if i < len(s) {
			dst[i] = s[i]
		} else {
			dst[i] = ' '
		}
	}
}

func trimPadded(b []byte) string {
	end := len(b)
	for end > 0 && b[end-1] == ' ' {
		end--
	}
	return string(b[:end])
}

// MarshalHeader encodes h (with FrameBytes already set) into dst, which
// must be at least HeaderSize bytes.
func MarshalHeader(dst []byte, h Header) {
	copy(dst[0:4], Magic[:])
	binary.BigEndian.PutUint32(dst[4:8], h.Seq)
	putPadded(dst[8:10], h.Network)
	putPadded(dst[10:15], h.Station)
	putPadded(dst[15:17], h.Location)
	putPadded(dst[17:20], h.Channel)
	binary.BigEndian.PutUint64(dst[20:28], uint64(h.StartTime))
	binary.BigEndian.PutUint64(dst[28:36], uint64(floatBits(h.SampleRate)))
	binary.BigEndian.PutUint32(dst[36:40], uint32(h.NSamples))
	binary.BigEndian.PutUint32(dst[40:44], uint32(h.FrameBytes))
	// dst[44:48] reserved
	dst[44], dst[45], dst[46], dst[47] = 0, 0, 0, 0
}

// UnmarshalHeader decodes a record header from src.
func UnmarshalHeader(src []byte) (Header, error) {
	if len(src) < HeaderSize {
		return Header{}, fmt.Errorf("mseed: short header: %d bytes", len(src))
	}
	if src[0] != Magic[0] || src[1] != Magic[1] || src[2] != Magic[2] || src[3] != Magic[3] {
		return Header{}, fmt.Errorf("mseed: bad magic %q", src[0:4])
	}
	h := Header{
		Seq:        binary.BigEndian.Uint32(src[4:8]),
		Network:    trimPadded(src[8:10]),
		Station:    trimPadded(src[10:15]),
		Location:   trimPadded(src[15:17]),
		Channel:    trimPadded(src[17:20]),
		StartTime:  int64(binary.BigEndian.Uint64(src[20:28])),
		SampleRate: floatFromBits(binary.BigEndian.Uint64(src[28:36])),
		NSamples:   int(binary.BigEndian.Uint32(src[36:40])),
		FrameBytes: int(binary.BigEndian.Uint32(src[40:44])),
	}
	if h.FrameBytes%FrameSize != 0 {
		return Header{}, fmt.Errorf("mseed: record %d: frame bytes %d not a multiple of %d",
			h.Seq, h.FrameBytes, FrameSize)
	}
	if h.SampleRate <= 0 && h.NSamples > 1 {
		return Header{}, fmt.Errorf("mseed: record %d: non-positive sample rate", h.Seq)
	}
	return h, nil
}

// WriteRecord compresses samples and writes one record to w, returning
// the number of bytes written.
func WriteRecord(w io.Writer, h Header, samples []int32) (int, error) {
	frames := EncodeSteim(samples)
	h.NSamples = len(samples)
	h.FrameBytes = len(frames)
	var hdr [HeaderSize]byte
	MarshalHeader(hdr[:], h)
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("mseed: write header: %w", err)
	}
	if _, err := w.Write(frames); err != nil {
		return 0, fmt.Errorf("mseed: write frames: %w", err)
	}
	return HeaderSize + len(frames), nil
}

// Reader iterates the records of one file.
type Reader struct {
	br  *bufio.Reader
	err error
}

// NewReader wraps r for record iteration.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// NextHeader reads the next record header, or io.EOF at end of file.
// After NextHeader the caller must consume the payload with either
// ReadPayload or SkipPayload before the next call.
func (r *Reader) NextHeader() (Header, error) {
	if r.err != nil {
		return Header{}, r.err
	}
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if err == io.EOF {
			r.err = io.EOF
			return Header{}, io.EOF
		}
		r.err = fmt.Errorf("mseed: read header: %w", err)
		return Header{}, r.err
	}
	h, err := UnmarshalHeader(hdr[:])
	if err != nil {
		r.err = err
	}
	return h, err
}

// ReadPayload decodes the samples of the record whose header was just
// returned by NextHeader.
func (r *Reader) ReadPayload(h Header) ([]int32, error) {
	frames := make([]byte, h.FrameBytes)
	if _, err := io.ReadFull(r.br, frames); err != nil {
		r.err = fmt.Errorf("mseed: read payload of record %d: %w", h.Seq, err)
		return nil, r.err
	}
	return DecodeSteim(frames, h.NSamples)
}

// SkipPayload discards the payload of the record whose header was just
// returned by NextHeader. This is the fast path metadata extraction uses:
// headers are read, waveforms are never touched.
func (r *Reader) SkipPayload(h Header) error {
	if _, err := r.br.Discard(h.FrameBytes); err != nil {
		r.err = fmt.Errorf("mseed: skip payload of record %d: %w", h.Seq, err)
		return r.err
	}
	return nil
}

// ScanHeaders reads only the record headers of the file at path — the
// metadata extraction primitive of the first execution stage.
func ScanHeaders(path string) ([]Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := NewReader(f)
	var out []Header
	for {
		h, err := r.NextHeader()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if err := r.SkipPayload(h); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, h)
	}
}

// ReadFile fully decodes every record of the file at path — the mount
// primitive of the second execution stage.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := NewReader(f)
	var out []Record
	for {
		h, err := r.NextHeader()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		samples, err := r.ReadPayload(h)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, Record{Header: h, Samples: samples})
	}
}

// ReadFileFiltered decodes only the records whose header satisfies keep;
// the payloads of rejected records are skipped without decompression.
// This implements the fused selection-with-mount access path (σ∘mount).
func ReadFileFiltered(path string, keep func(Header) bool) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := NewReader(f)
	var out []Record
	for {
		h, err := r.NextHeader()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if !keep(h) {
			if err := r.SkipPayload(h); err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			continue
		}
		samples, err := r.ReadPayload(h)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, Record{Header: h, Samples: samples})
	}
}

func floatBits(f float64) uint64     { return uint64FromFloat(f) }
func floatFromBits(b uint64) float64 { return float64FromUint(b) }
