package mseed

import "math"

func uint64FromFloat(f float64) uint64 { return math.Float64bits(f) }
func float64FromUint(b uint64) float64 { return math.Float64frombits(b) }
