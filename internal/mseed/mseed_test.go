package mseed

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/waveform"
)

func TestSteimRoundTripSimple(t *testing.T) {
	samples := []int32{100, 101, 99, 150, -20000, -20001, 1 << 20, 0}
	frames := EncodeSteim(samples)
	got, err := DecodeSteim(frames, len(samples))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(samples) {
		t.Fatalf("decoded %d samples, want %d", len(got), len(samples))
	}
	for i := range samples {
		if got[i] != samples[i] {
			t.Errorf("sample %d = %d, want %d", i, got[i], samples[i])
		}
	}
}

func TestSteimSingleSample(t *testing.T) {
	frames := EncodeSteim([]int32{42})
	if len(frames) != FrameSize {
		t.Fatalf("single sample encoded to %d bytes, want one frame", len(frames))
	}
	got, err := DecodeSteim(frames, 1)
	if err != nil || len(got) != 1 || got[0] != 42 {
		t.Fatalf("decode = %v, %v", got, err)
	}
}

func TestSteimEmpty(t *testing.T) {
	if frames := EncodeSteim(nil); frames != nil {
		t.Error("empty input produced frames")
	}
	got, err := DecodeSteim(nil, 0)
	if err != nil || got != nil {
		t.Error("empty decode failed")
	}
	if _, err := DecodeSteim(nil, 5); err == nil {
		t.Error("decode of nothing into 5 samples must fail")
	}
}

func TestSteimRoundTripProperty(t *testing.T) {
	f := func(raw []int32) bool {
		frames := EncodeSteim(raw)
		got, err := DecodeSteim(frames, len(raw))
		if err != nil {
			return false
		}
		if len(got) != len(raw) {
			return false
		}
		for i := range raw {
			if got[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSteimExtremeDeltas(t *testing.T) {
	samples := []int32{0, math.MaxInt32, math.MinInt32, -1, 1, math.MinInt32 + 5}
	frames := EncodeSteim(samples)
	got, err := DecodeSteim(frames, len(samples))
	if err != nil {
		t.Fatal(err)
	}
	for i := range samples {
		if got[i] != samples[i] {
			t.Errorf("sample %d = %d, want %d (overflowing deltas must wrap consistently)",
				i, got[i], samples[i])
		}
	}
}

func TestSteimCompressesSmoothData(t *testing.T) {
	samples := waveform.Synthesize(1, 40000, waveform.DefaultParams())
	frames := EncodeSteim(samples)
	raw := len(samples) * 4
	if len(frames) >= raw/2 {
		t.Errorf("compressed %d bytes of %d raw: expected at least 2x compression on smooth data",
			len(frames), raw)
	}
	got, err := DecodeSteim(frames, len(samples))
	if err != nil {
		t.Fatal(err)
	}
	for i := range samples {
		if got[i] != samples[i] {
			t.Fatalf("sample %d mismatch after round trip", i)
		}
	}
}

func TestSteimDetectsCorruption(t *testing.T) {
	samples := []int32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	frames := EncodeSteim(samples)
	frames[20] ^= 0xFF // corrupt a data word
	if _, err := DecodeSteim(frames, len(samples)); err == nil {
		t.Error("corrupted frames decoded without error")
	}
	if _, err := DecodeSteim(frames[:10], len(samples)); err == nil {
		t.Error("truncated, misaligned frames accepted")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		Seq: 7, Network: "NL", Station: "ISK", Location: "00", Channel: "BHE",
		StartTime: 1263247200 * 1e9, SampleRate: 40, NSamples: 1234, FrameBytes: FrameSize * 3,
	}
	var buf [HeaderSize]byte
	MarshalHeader(buf[:], h)
	got, err := UnmarshalHeader(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("header round trip: got %+v, want %+v", got, h)
	}
}

func TestHeaderValidation(t *testing.T) {
	if _, err := UnmarshalHeader(make([]byte, 10)); err == nil {
		t.Error("short header accepted")
	}
	var buf [HeaderSize]byte
	if _, err := UnmarshalHeader(buf[:]); err == nil {
		t.Error("bad magic accepted")
	}
	h := Header{Network: "NL", Station: "X", Channel: "BHZ", SampleRate: 40, FrameBytes: 13}
	MarshalHeader(buf[:], h)
	if _, err := UnmarshalHeader(buf[:]); err == nil {
		t.Error("misaligned FrameBytes accepted")
	}
}

func TestHeaderPaddingTrimmed(t *testing.T) {
	h := Header{Network: "N", Station: "AB", Location: "", Channel: "BH", SampleRate: 1}
	var buf [HeaderSize]byte
	MarshalHeader(buf[:], h)
	got, err := UnmarshalHeader(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Station != "AB" || got.Location != "" || got.Channel != "BH" {
		t.Errorf("padding not trimmed: %+v", got)
	}
}

func TestEndAndSampleTime(t *testing.T) {
	h := Header{StartTime: 0, SampleRate: 40, NSamples: 41}
	if h.EndTime() != 1e9 {
		t.Errorf("EndTime = %d, want 1e9 (40 samples after the first = 1 s at 40 Hz)", h.EndTime())
	}
	if h.SampleTime(40) != 1e9 {
		t.Errorf("SampleTime(40) = %d", h.SampleTime(40))
	}
	one := Header{StartTime: 5, SampleRate: 40, NSamples: 1}
	if one.EndTime() != 5 {
		t.Error("single-sample EndTime should equal StartTime")
	}
}

func writeTestFile(t *testing.T, path string, recs []Record) {
	t.Helper()
	var buf bytes.Buffer
	for _, rec := range recs {
		if _, err := WriteRecord(&buf, rec.Header, rec.Samples); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func testRecords() []Record {
	recs := make([]Record, 3)
	for i := range recs {
		samples := waveform.Synthesize(int64(i+1), 500, waveform.DefaultParams())
		recs[i] = Record{
			Header: Header{
				Seq: uint32(i), Network: "NL", Station: "ISK", Channel: "BHE",
				StartTime: int64(i) * 500 * 25_000_000, SampleRate: 40,
			},
			Samples: samples,
		}
	}
	return recs
}

func TestFileScanHeadersAndReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.mseed")
	writeTestFile(t, path, testRecords())

	headers, err := ScanHeaders(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(headers) != 3 {
		t.Fatalf("scanned %d headers, want 3", len(headers))
	}
	if headers[1].Seq != 1 || headers[1].NSamples != 500 {
		t.Errorf("header 1 = %+v", headers[1])
	}

	recs, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || len(recs[2].Samples) != 500 {
		t.Fatalf("ReadFile wrong shape")
	}
	want := waveform.Synthesize(3, 500, waveform.DefaultParams())
	for i := range want {
		if recs[2].Samples[i] != want[i] {
			t.Fatal("record 2 samples corrupted through file round trip")
		}
	}
}

func TestReadFileFiltered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.mseed")
	writeTestFile(t, path, testRecords())
	recs, err := ReadFileFiltered(path, func(h Header) bool { return h.Seq == 1 })
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("filtered read returned %d records", len(recs))
	}
}

func TestScanHeadersRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.mseed")
	if err := os.WriteFile(path, []byte("this is not a seed file at all........................."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ScanHeaders(path); err == nil {
		t.Error("garbage file scanned without error")
	}
	if _, err := ScanHeaders(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file scanned without error")
	}
}

func TestWriteRecordSetsGeometry(t *testing.T) {
	var buf bytes.Buffer
	n, err := WriteRecord(&buf, Header{Network: "N", Station: "S", Channel: "BHZ", SampleRate: 40},
		[]int32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if n != buf.Len() {
		t.Errorf("reported %d bytes, wrote %d", n, buf.Len())
	}
	h, err := UnmarshalHeader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if h.NSamples != 3 || h.FrameBytes != buf.Len()-HeaderSize {
		t.Errorf("geometry wrong: %+v", h)
	}
}
