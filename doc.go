// Package repro is a from-scratch Go reproduction of "Turning Scientists
// into Data Explorers" (Yağız Kargın, SIGMOD 2013 PhD Symposium): a
// database engine with two-stage query execution and automated lazy
// ingestion (ALi) over scientific file repositories.
//
// The implementation lives under internal/: internal/core is the engine
// (the paper's contribution), with the column store, relational engine,
// mSEED file format, repository generator and exploration layer as
// separate packages. Runnable entry points are under cmd/ and examples/;
// the benchmarks in bench_test.go regenerate the paper's Table 1 and
// Figure 3. See README.md, DESIGN.md and EXPERIMENTS.md.
package repro
