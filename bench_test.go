// Benchmarks regenerating the paper's evaluation: Table 1 (dataset and
// sizes), Figure 3 (Query 1/2, cold/hot, Ei vs ALi), the up-front
// ingestion gap, the index-build-to-load ratio, and the ablations the
// paper's Challenges section motivates (cache granularity, merge
// strategy, derived metadata, selectivity sweep).
//
// Scale is controlled by REPRO_SCALE (tiny | small | medium); the
// default is small. Custom metrics: "modeled-ms/op" adds the virtual
// disk time of the cost model to wall time (see internal/storage).
package repro_test

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/benchutil"
	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/mseed"
	"repro/internal/repo"
	"repro/internal/seismic"
	"repro/internal/storage"
	"repro/internal/vector"
	"repro/internal/waveform"
)

var (
	benchBase string
	baseOnce  sync.Once
)

// benchDir returns the shared scratch directory for benchmark datasets.
func benchDir(b *testing.B) string {
	b.Helper()
	baseOnce.Do(func() {
		dir, err := os.MkdirTemp("", "repro-bench-")
		if err != nil {
			b.Fatal(err)
		}
		benchBase = dir
	})
	return benchBase
}

var (
	engines   = map[string]*core.Engine{}
	manifests = map[string]*repo.Manifest{}
	engineMu  sync.Mutex
)

// benchManifest returns the shared repository manifest for a scale,
// building it on first use. Callers must hold engineMu.
func benchManifest(b *testing.B, sc benchutil.Scale) *repo.Manifest {
	b.Helper()
	m, ok := manifests[sc.Name]
	if !ok {
		var err error
		m, err = benchutil.BuildRepo(benchDir(b), sc)
		if err != nil {
			b.Fatal(err)
		}
		manifests[sc.Name] = m
	}
	return m
}

// benchEngine returns a shared engine for (scale, mode), building the
// repository and ingesting on first use.
func benchEngine(b *testing.B, sc benchutil.Scale, mode core.Mode) *core.Engine {
	b.Helper()
	engineMu.Lock()
	defer engineMu.Unlock()
	key := sc.Name + "/" + mode.String()
	if e, ok := engines[key]; ok {
		return e
	}
	m := benchManifest(b, sc)
	e, err := benchutil.OpenEngine(m, benchDir(b), core.Options{Mode: mode})
	if err != nil {
		b.Fatal(err)
	}
	engines[key] = e
	return e
}

func benchScale() benchutil.Scale { return benchutil.EnvScale() }

// runQuery times one query execution, reporting wall and modeled time.
func runQuery(b *testing.B, e *core.Engine, query string, cold bool) {
	b.Helper()
	var modeled time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cold {
			e.FlushCold()
			e.Cache().Clear()
		}
		ioBefore := e.Clock().Elapsed()
		start := time.Now()
		if _, err := e.Query(query); err != nil {
			b.Fatal(err)
		}
		modeled += time.Since(start) + e.Clock().Elapsed() - ioBefore
	}
	b.ReportMetric(float64(modeled.Milliseconds())/float64(b.N), "modeled-ms/op")
}

// --- Figure 3: Query 1 and Query 2, cold and hot, Ei vs ALi ---

func BenchmarkFigure3Query1ColdALi(b *testing.B) {
	runQuery(b, benchEngine(b, benchScale(), core.ModeALi), benchutil.Query1, true)
}

func BenchmarkFigure3Query1ColdEi(b *testing.B) {
	runQuery(b, benchEngine(b, benchScale(), core.ModeEi), benchutil.Query1, true)
}

func BenchmarkFigure3Query1HotALi(b *testing.B) {
	runQuery(b, benchEngine(b, benchScale(), core.ModeALi), benchutil.Query1, false)
}

func BenchmarkFigure3Query1HotEi(b *testing.B) {
	runQuery(b, benchEngine(b, benchScale(), core.ModeEi), benchutil.Query1, false)
}

func BenchmarkFigure3Query2ColdALi(b *testing.B) {
	runQuery(b, benchEngine(b, benchScale(), core.ModeALi), benchutil.Query2, true)
}

func BenchmarkFigure3Query2ColdEi(b *testing.B) {
	runQuery(b, benchEngine(b, benchScale(), core.ModeEi), benchutil.Query2, true)
}

func BenchmarkFigure3Query2HotALi(b *testing.B) {
	runQuery(b, benchEngine(b, benchScale(), core.ModeALi), benchutil.Query2, false)
}

func BenchmarkFigure3Query2HotEi(b *testing.B) {
	runQuery(b, benchEngine(b, benchScale(), core.ModeEi), benchutil.Query2, false)
}

// BenchmarkFigure3Query1ColdALiParallel sweeps the ingestion/mount
// worker count over the cold-ALi column of Figure 3: per-file
// extract/transform is the hot path of every cold query, so wall time
// should drop as workers grow while the answer stays identical.
func BenchmarkFigure3Query1ColdALiParallel(b *testing.B) {
	sc := benchScale()
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			engineMu.Lock()
			m := benchManifest(b, sc)
			engineMu.Unlock()
			e, err := benchutil.OpenEngine(m, benchDir(b), core.Options{Mode: core.ModeALi, Parallelism: workers})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			runQuery(b, e, benchutil.Query1, true)
		})
	}
}

// BenchmarkConcurrentColdClients measures K clients issuing the same
// cold wide query against ONE ALi engine: the shared mount service
// coalesces their extractions, so total file-mounts stay ~one per file
// of interest instead of K per file. mounts-per-file is the headline
// metric.
func BenchmarkConcurrentColdClients(b *testing.B) {
	sc := benchScale()
	query := benchutil.SweepQueryForDays(sc.Days)
	for _, k := range []int{2, 8} {
		k := k
		b.Run(fmt.Sprintf("clients=%d", k), func(b *testing.B) {
			engineMu.Lock()
			m := benchManifest(b, sc)
			engineMu.Unlock()
			e, err := benchutil.OpenEngine(m, benchDir(b), core.Options{
				Mode:  core.ModeALi,
				Cache: cache.Config{Policy: cache.LRU, Granularity: cache.FileGranular},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			var mounts int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e.FlushCold()
				e.Cache().Clear()
				b.StartTimer()
				var wg sync.WaitGroup
				results := make([]*core.Result, k)
				errs := make([]error, k)
				for c := 0; c < k; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						results[c], errs[c] = e.Query(query)
					}(c)
				}
				wg.Wait()
				for c := 0; c < k; c++ {
					if errs[c] != nil {
						b.Fatal(errs[c])
					}
					mounts += results[c].Stats.Mounts.FilesMounted
				}
			}
			b.ReportMetric(float64(mounts)/float64(b.N)/float64(sc.Files()), "mounts-per-file")
		})
	}
}

// --- Table 1: sizes; reported as metrics from a one-shot measurement ---

func BenchmarkTable1Sizes(b *testing.B) {
	sc := benchutil.Tiny
	t1, err := benchutil.ExperimentTable1(benchDir(b), sc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t1
	}
	b.ReportMetric(float64(t1.MSEEDBytes), "mseed-bytes")
	b.ReportMetric(float64(t1.DBBytes), "db-bytes")
	b.ReportMetric(float64(t1.KeyBytes), "key-bytes")
	b.ReportMetric(float64(t1.ALiBytes), "ali-bytes")
	b.ReportMetric(float64(t1.DRecords), "samples")
}

// --- Up-front ingestion: the data-to-insight gap and the 4x index claim ---

func BenchmarkIngestionMetadataOnly(b *testing.B) {
	sc := benchutil.Tiny
	m, err := benchutil.BuildRepo(benchDir(b), sc)
	if err != nil {
		b.Fatal(err)
	}
	uris := make([]string, len(m.Files))
	for i, f := range m.Files {
		uris[i] = f.URI
	}
	ad := seismic.NewAdapter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		clock := &storage.Clock{}
		pool := storage.NewBufferPool(4096, storage.HDD7200(), clock)
		dir, _ := os.MkdirTemp(benchDir(b), "ing-")
		store, err := storage.Open(dir, pool)
		if err != nil {
			b.Fatal(err)
		}
		newCatalog(b, store, ad)
		b.StartTimer()
		if _, err := ingest.LoadMetadata(store, ad, m.Dir, uris); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		store.Close()
		os.RemoveAll(dir)
		b.StartTimer()
	}
}

func BenchmarkIngestionEager(b *testing.B) {
	sc := benchutil.Tiny
	m, err := benchutil.BuildRepo(benchDir(b), sc)
	if err != nil {
		b.Fatal(err)
	}
	uris := make([]string, len(m.Files))
	for i, f := range m.Files {
		uris[i] = f.URI
	}
	ad := seismic.NewAdapter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		clock := &storage.Clock{}
		pool := storage.NewBufferPool(4096, storage.HDD7200(), clock)
		dir, _ := os.MkdirTemp(benchDir(b), "ing-")
		store, err := storage.Open(dir, pool)
		if err != nil {
			b.Fatal(err)
		}
		newCatalog(b, store, ad)
		b.StartTimer()
		res, err := ingest.LoadEager(store, ad, m.Dir, uris, true)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		for _, ix := range res.Indexes {
			ix.Index.Close()
		}
		store.Close()
		os.RemoveAll(dir)
		b.StartTimer()
	}
}

func BenchmarkIndexBuildRatio(b *testing.B) {
	g, err := benchutil.ExperimentIngestion(benchDir(b), benchutil.Tiny)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g
	}
	b.ReportMetric(g.IndexToLoad, "index-to-load-ratio")
	b.ReportMetric(g.UpFrontRatio, "ei-to-ali-ratio")
}

// --- Interactivity: breakpoint latency (stage 1 only) ---

func BenchmarkStage1Breakpoint(b *testing.B) {
	e := benchEngine(b, benchScale(), core.ModeALi)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := e.Prepare(benchutil.Query1)
		if err != nil {
			b.Fatal(err)
		}
		bp, err := p.Stage1()
		if err != nil {
			b.Fatal(err)
		}
		if bp.Done() {
			b.Fatal("unexpected single-stage answer")
		}
	}
}

// --- Ablations ---

func BenchmarkSelectivitySweep(b *testing.B) {
	sc := benchutil.Tiny
	for _, days := range []int{1, 4, 13} {
		days := days
		b.Run(sweepName(days), func(b *testing.B) {
			m, err := benchutil.BuildRepo(benchDir(b), sc)
			if err != nil {
				b.Fatal(err)
			}
			e, err := benchutil.OpenEngine(m, benchDir(b), core.Options{Mode: core.ModeALi})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			q := benchutil.SweepQueryForDays(days)
			runQuery(b, e, q, true)
		})
	}
}

func sweepName(days int) string {
	switch days {
	case 1:
		return "days=1"
	case 4:
		return "days=4"
	default:
		return "days=all"
	}
}

func BenchmarkCacheGranularity(b *testing.B) {
	sc := benchutil.Tiny
	for _, cfg := range []struct {
		name string
		c    cache.Config
	}{
		{"none", cache.Config{Policy: cache.NeverCache}},
		{"file", cache.Config{Policy: cache.LRU, Granularity: cache.FileGranular}},
		{"tuple", cache.Config{Policy: cache.LRU, Granularity: cache.TupleGranular}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			m, err := benchutil.BuildRepo(benchDir(b), sc)
			if err != nil {
				b.Fatal(err)
			}
			e, err := benchutil.OpenEngine(m, benchDir(b), core.Options{Mode: core.ModeALi, Cache: cfg.c})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			session := benchutil.ZoomSessionQueries()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Cache().Clear()
				for _, q := range session {
					if _, err := e.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkMergeStrategy(b *testing.B) {
	sc := benchutil.Tiny
	for _, strat := range []core.MergeStrategy{core.StrategyBulk, core.StrategyPerFile} {
		strat := strat
		b.Run(strat.String(), func(b *testing.B) {
			m, err := benchutil.BuildRepo(benchDir(b), sc)
			if err != nil {
				b.Fatal(err)
			}
			e, err := benchutil.OpenEngine(m, benchDir(b), core.Options{Mode: core.ModeALi, Strategy: strat})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			runQuery(b, e, benchutil.SweepQueryForDays(4), false)
		})
	}
}

func BenchmarkDerivedMetadata(b *testing.B) {
	sc := benchutil.Tiny
	for _, enabled := range []bool{false, true} {
		enabled := enabled
		name := "without"
		if enabled {
			name = "with"
		}
		b.Run(name, func(b *testing.B) {
			m, err := benchutil.BuildRepo(benchDir(b), sc)
			if err != nil {
				b.Fatal(err)
			}
			e, err := benchutil.OpenEngine(m, benchDir(b), core.Options{Mode: core.ModeALi, EnableDerived: enabled})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			runQuery(b, e, benchutil.FullRecordSummaryQuery(), false)
		})
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkSteimEncode(b *testing.B) {
	samples := waveform.Synthesize(7, 40000, waveform.DefaultParams())
	b.SetBytes(int64(len(samples) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mseed.EncodeSteim(samples)
	}
}

func BenchmarkSteimDecode(b *testing.B) {
	samples := waveform.Synthesize(7, 40000, waveform.DefaultParams())
	frames := mseed.EncodeSteim(samples)
	b.SetBytes(int64(len(samples) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mseed.DecodeSteim(frames, len(samples)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWaveformSynthesis(b *testing.B) {
	b.SetBytes(40000 * 4)
	for i := 0; i < b.N; i++ {
		waveform.Synthesize(int64(i), 40000, waveform.DefaultParams())
	}
}

func BenchmarkMetadataScanHeaders(b *testing.B) {
	sc := benchutil.Tiny
	m, err := benchutil.BuildRepo(benchDir(b), sc)
	if err != nil {
		b.Fatal(err)
	}
	path := m.Path(m.Files[0].URI)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mseed.ScanHeaders(path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMountFullFile(b *testing.B) {
	sc := benchutil.Tiny
	m, err := benchutil.BuildRepo(benchDir(b), sc)
	if err != nil {
		b.Fatal(err)
	}
	ad := seismic.NewAdapter()
	uri := m.Files[0].URI
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ad.Mount(m.Path(uri), uri, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// newCatalog wires the adapter's tables into a fresh store.
func newCatalog(b *testing.B, store *storage.Store, ad *seismic.Adapter) {
	b.Helper()
	if err := ingest.EnsureTables(store, catalog.New(), ad); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCoWSharedReplay measures the shared-Qf-replay path (per-file
// merge strategy replays one Qf result across every file of interest)
// under the old deep-clone discipline versus copy-on-write shares.
// allocs/op and B/op are the headline metrics: share mode performs O(1)
// deep copies total instead of one per file.
func BenchmarkCoWSharedReplay(b *testing.B) {
	sc := benchScale()
	query := benchutil.SweepQueryForDays(sc.Days)
	for _, mode := range []struct {
		name  string
		clone bool
	}{{"clone", true}, {"share", false}} {
		b.Run(mode.name, func(b *testing.B) {
			engineMu.Lock()
			m := benchManifest(b, sc)
			engineMu.Unlock()
			e, err := benchutil.OpenEngine(m, benchDir(b), core.Options{
				Mode: core.ModeALi, Strategy: core.StrategyPerFile,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			prev := vector.SetForceCloneShares(mode.clone)
			defer vector.SetForceCloneShares(prev)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e.FlushCold()
				e.Cache().Clear()
				b.StartTimer()
				if _, err := e.Query(query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkResultCacheConcurrentClients measures K identical concurrent
// queries against one warm engine with and without the result cache:
// without it every client pays a full Qf+Qs execution; with it one
// client leads and the riders receive O(1) CoW shares. The
// "executions-per-burst" metric is total file mounts divided by the
// repository size — 1.0 means single-flight collapsed the burst to one
// execution.
func BenchmarkResultCacheConcurrentClients(b *testing.B) {
	sc := benchScale()
	query := benchutil.SweepQueryForDays(sc.Days)
	for _, mode := range []struct {
		name       string
		cacheBytes int64
	}{{"nocache", 0}, {"resultcache", -1}} {
		b.Run(mode.name, func(b *testing.B) {
			engineMu.Lock()
			m := benchManifest(b, sc)
			engineMu.Unlock()
			e, err := benchutil.OpenEngine(m, benchDir(b), core.Options{
				Mode:             core.ModeALi,
				ResultCacheBytes: mode.cacheBytes,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			const k = 8
			var mounts int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e.FlushCold()
				e.Cache().Clear() // also bumps the result-cache epoch: every burst is cold
				b.StartTimer()
				var wg sync.WaitGroup
				results := make([]*core.Result, k)
				errs := make([]error, k)
				for c := 0; c < k; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						results[c], errs[c] = e.Query(query)
					}(c)
				}
				wg.Wait()
				for c := 0; c < k; c++ {
					if errs[c] != nil {
						b.Fatal(errs[c])
					}
					mounts += results[c].Stats.Mounts.FilesMounted
				}
			}
			b.ReportMetric(float64(mounts)/float64(b.N)/float64(sc.Files()), "executions-per-burst")
		})
	}
}
