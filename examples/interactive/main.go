// Interactive breakpoints: the paper's answer to "why can't he have a
// way to interfere with his own query's destiny?". Each query pauses
// between its two stages; the explorer (here, a budget policy standing
// in for him) inspects the informativeness estimate and decides whether
// the second stage is worth its cost. The worst-case query — everything,
// everywhere — is refused before a single byte is ingested; the refined
// query proceeds.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/repo"
)

func main() {
	work, err := os.MkdirTemp("", "interactive-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	spec := repo.DefaultSpec(work + "/repo")
	spec.Days = 14
	m, err := repo.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.Open(core.Options{Mode: core.ModeALi, RepoDir: m.Dir, DBDir: work + "/db"})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// The "one-minute database kernel": abort anything estimated beyond
	// 250ms of modeled work (our repository is small; scale the idea down).
	session := explore.NewSession(explore.MaxCost(250 * time.Millisecond))

	run := func(label, sql string) {
		fmt.Printf("== %s ==\n", label)
		p, err := eng.Prepare(sql)
		if err != nil {
			log.Fatal(err)
		}
		bp, err := p.Stage1()
		if err != nil {
			log.Fatal(err)
		}
		if bp.Done() {
			fmt.Println("answered in the first stage (metadata only)")
			fmt.Print(bp.Result().Format(5))
			fmt.Println()
			return
		}
		fmt.Println("breakpoint:", bp.Est.String())
		if session.Decide(bp.Est) == explore.Abort {
			session.Log(explore.Record{SQL: label, Estimate: bp.Est, Decision: explore.Abort})
			fmt.Println("decision: ABORT — not worth the time; refine the query instead")
			fmt.Println()
			return
		}
		start := time.Now()
		res, err := bp.Proceed()
		if err != nil {
			log.Fatal(err)
		}
		session.Log(explore.Record{SQL: label, Estimate: bp.Est, Rows: res.Rows(), Wall: time.Since(start)})
		fmt.Printf("decision: PROCEED — %d rows in %v (estimate was %v)\n\n",
			res.Rows(), res.Stats.Modeled().Round(time.Millisecond),
			bp.Est.EstCost.Round(time.Millisecond))
	}

	// 1. The naive first query: average over EVERYTHING. The paper's worst
	// case — data of interest is the entire repository.
	run("naive: average the whole repository", `SELECT AVG(D.sample_value)
		FROM F JOIN R ON F.uri = R.uri
		JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
		WHERE R.start_time > '2010-01-01T00:00:00.000'`)

	// 2. Refine with metadata first: which station-days even exist?
	run("refine: metadata browse", `SELECT station, channel, COUNT(*) AS files
		FROM F GROUP BY station, channel ORDER BY station, channel LIMIT 6`)

	// 3. The informed query: one station, one channel, one two-second
	// window. Cheap, precise, proceeds.
	run("informed: Query 1", `SELECT AVG(D.sample_value)
		FROM F JOIN R ON F.uri = R.uri
		JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
		WHERE F.station = 'ISK' AND F.channel = 'BHE'
		AND R.start_time > '2010-01-12T00:00:00.000'
		AND R.start_time < '2010-01-12T23:59:59.999'
		AND D.sample_time > '2010-01-12T22:15:00.000'
		AND D.sample_time < '2010-01-12T22:15:02.000'`)

	// 4. A provably empty query: the estimate says so at the breakpoint,
	// and the second stage is skipped outright.
	run("empty: station that does not exist", `SELECT AVG(D.sample_value)
		FROM F JOIN R ON F.uri = R.uri
		JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
		WHERE F.station = 'XXXX'`)

	fmt.Println("== session history ==")
	fmt.Print(session.Summary())
}
