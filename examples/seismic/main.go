// Seismic event hunt: the exploration loop the paper's introduction
// motivates. The explorer browses metadata to pick a promising station,
// retrieves a waveform window with Query-2-style retrieval, runs an
// STA/LTA detector over it, and zooms into the trigger — each step a
// query, each query ingesting only its files of interest.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/repo"
	"repro/internal/vector"
	"repro/internal/waveform"
)

func main() {
	work, err := os.MkdirTemp("", "seismic-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	spec := repo.DefaultSpec(work + "/repo")
	spec.Days = 13
	spec.Wave.EventRate = 40 // make events likely inside the coverage window
	m, err := repo.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.Open(core.Options{Mode: core.ModeALi, RepoDir: m.Dir, DBDir: work + "/db"})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Step 1 — metadata browsing: which stations have data on 2010-01-12,
	// and how much? Answered without touching a single waveform.
	fmt.Println("== step 1: browse metadata (first stage only) ==")
	res, err := eng.Query(`SELECT station, COUNT(*) AS files, SUM(size_bytes) AS bytes
		FROM F WHERE day_of_year = 12 GROUP BY station ORDER BY station`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Format(0))
	fmt.Printf("(metadata-only: %v, zero files mounted)\n\n", res.Stats.Modeled().Round(time.Millisecond))

	// Step 2 — retrieve a waveform window from the vertical channel of ISK.
	fmt.Println("== step 2: retrieve a waveform window (Query 2 shape) ==")
	wave, err := eng.Query(`SELECT D.sample_time, D.sample_value
		FROM F JOIN R ON F.uri = R.uri
		JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
		WHERE F.station = 'ISK' AND F.channel = 'BHZ'
		AND R.start_time > '2010-01-12T00:00:00.000'
		AND R.start_time < '2010-01-12T23:59:59.999'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retrieved %d samples from %d mounted file(s) in %v\n\n",
		wave.Rows(), wave.Stats.Mounts.FilesMounted, wave.Stats.Modeled().Round(time.Millisecond))

	// Step 3 — run the STA/LTA detector over the retrieved samples.
	fmt.Println("== step 3: STA/LTA event detection on the retrieved window ==")
	samples := make([]int32, 0, wave.Rows())
	times := make([]int64, 0, wave.Rows())
	for _, b := range wave.Mat.Batches {
		for i := 0; i < b.Len(); i++ {
			times = append(times, b.Cols[0].Int64s()[i])
			samples = append(samples, int32(b.Cols[1].Float64s()[i]))
		}
	}
	triggers := waveform.Detect(samples, waveform.DefaultSTALTA(40))
	if len(triggers) == 0 {
		fmt.Println("no events in this window — the explorer would move on to another day")
		return
	}
	for i, tr := range triggers {
		fmt.Printf("trigger %d: %s .. %s (peak STA/LTA %.1f)\n", i+1,
			vector.FormatTime(times[tr.Start]), vector.FormatTime(times[tr.End]), tr.PeakRatio)
	}

	// Step 4 — zoom into the strongest trigger with a tight Query 1.
	best := triggers[0]
	for _, tr := range triggers {
		if tr.PeakRatio > best.PeakRatio {
			best = tr
		}
	}
	lo := vector.FormatTime(times[best.Start] - int64(2*time.Second))
	hi := vector.FormatTime(times[best.End] + int64(2*time.Second))
	fmt.Printf("\n== step 4: zoom into the event (%s .. %s) across all channels ==\n", lo, hi)
	zoom, err := eng.Query(fmt.Sprintf(`SELECT F.channel, COUNT(*) AS n, AVG(D.sample_value) AS mean,
		MIN(D.sample_value) AS lo, MAX(D.sample_value) AS hi
		FROM F JOIN R ON F.uri = R.uri
		JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
		WHERE F.station = 'ISK'
		AND R.start_time > '2010-01-12T00:00:00.000'
		AND R.start_time < '2010-01-12T23:59:59.999'
		AND D.sample_time > '%s' AND D.sample_time < '%s'
		GROUP BY F.channel ORDER BY F.channel`, lo, hi))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(zoom.Format(0))
	fmt.Printf("(%d files of interest, %d mounted)\n",
		zoom.Stats.FilesOfInterest, zoom.Stats.Mounts.FilesMounted)

	// A tiny ASCII seismogram of the event on the channel we analysed.
	fmt.Println("\nevent seismogram (BHZ, 60 columns):")
	fmt.Println(sparkline(samples[max(0, best.Start-80):min(len(samples), best.End+80)], 60))
}

// sparkline renders samples as a coarse ASCII amplitude plot.
func sparkline(xs []int32, width int) string {
	if len(xs) == 0 {
		return ""
	}
	glyphs := []rune("_.-~^*#")
	step := len(xs)/width + 1
	var peak float64 = 1
	for _, x := range xs {
		if f := abs(float64(x)); f > peak {
			peak = f
		}
	}
	var sb strings.Builder
	for i := 0; i < len(xs); i += step {
		hi := min(i+step, len(xs))
		var m float64
		for _, x := range xs[i:hi] {
			if f := abs(float64(x)); f > m {
				m = f
			}
		}
		idx := int(m / peak * float64(len(glyphs)-1))
		sb.WriteRune(glyphs[idx])
	}
	return sb.String()
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
