// Multi-stage query execution (paper §5): "the system ... tries to
// ingest in more than one place during execution ... the user having
// full control over his query's destiny, even after the query leaves him
// and comes to the database."
//
// A repository-wide average runs as a sequence of ingestion rounds; the
// explorer watches the running answer converge and stops as soon as it
// is stable enough — here, when two consecutive partials agree within
// 1%. The complete scan never happens, yet the answer is within a
// fraction of a percent of the true value.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/repo"
)

func main() {
	work, err := os.MkdirTemp("", "multistage-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	spec := repo.DefaultSpec(work + "/repo")
	spec.Days = 10
	m, err := repo.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.Open(core.Options{Mode: core.ModeALi, RepoDir: m.Dir, DBDir: work + "/db"})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	q := `SELECT AVG(D.sample_value)
	FROM F JOIN R ON F.uri = R.uri
	JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
	WHERE R.start_time > '2010-01-01T00:00:00.000'`

	// Ground truth first (the full, patient execution).
	truth, err := eng.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	trueAvg := truth.Float(0, 0)
	fmt.Printf("ground truth (all %d files ingested): AVG = %.4f in %v\n\n",
		truth.Stats.Mounts.FilesMounted, trueAvg, truth.Stats.Modeled().Round(time.Millisecond))

	// Now the impatient explorer: stop when the running average is stable.
	p, err := eng.Prepare(q)
	if err != nil {
		log.Fatal(err)
	}
	bp, err := p.Stage1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("breakpoint: %s\n", bp.Est)
	fmt.Println("\ningesting in rounds of 8 files, watching the partial answer:")
	var prev float64
	var prevSet bool
	res, err := bp.ProceedIncremental(8, func(pt core.Partial) bool {
		cur := pt.Values[0].AsFloat()
		fmt.Printf("  %3d/%3d files  AVG = %10.4f  [%v]\n",
			pt.FilesProcessed, pt.FilesTotal, cur, pt.Elapsed.Round(time.Millisecond))
		stable := prevSet && math.Abs(cur-prev) <= 0.01*math.Max(math.Abs(prev), 1)
		prev, prevSet = cur, true
		return !stable // keep going until two rounds agree within 1%
	})
	if err != nil {
		log.Fatal(err)
	}

	got := res.Float(0, 0)
	fmt.Printf("\nstopped early: %v (mounted %d of %d files)\n",
		res.Stats.StoppedEarly, res.Stats.Mounts.FilesMounted, res.Stats.FilesOfInterest)
	fmt.Printf("early answer %.4f vs truth %.4f (%.2f%% off) in %v\n",
		got, trueAvg, 100*math.Abs(got-trueAvg)/math.Max(math.Abs(trueAvg), 1e-9),
		res.Stats.Modeled().Round(time.Millisecond))
}
