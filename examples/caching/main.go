// Caching policies: the paper leaves open "when and how one cache
// granularity is better than the other for explorative scientific
// workloads". This example runs two canonical exploration sessions —
// zooming in on an event, and panning across time — under no caching,
// file-granular and tuple-granular caching, and shows where each
// granularity wins.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/repo"
)

func window(lo, hi string) string {
	return fmt.Sprintf(`SELECT AVG(D.sample_value)
FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE F.station = 'ISK' AND F.channel = 'BHE'
AND R.start_time > '2010-01-12T00:00:00.000'
AND R.start_time < '2010-01-12T23:59:59.999'
AND D.sample_time > '%s' AND D.sample_time < '%s'`, lo, hi)
}

func main() {
	work, err := os.MkdirTemp("", "caching-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)
	spec := repo.DefaultSpec(work + "/repo")
	spec.Stations = spec.Stations[:2]
	spec.Days = 13
	m, err := repo.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}

	zoom := []string{ // narrowing windows: later queries ⊂ earlier ones
		window("2010-01-12T22:10:00.000", "2010-01-12T22:16:00.000"),
		window("2010-01-12T22:14:00.000", "2010-01-12T22:16:00.000"),
		window("2010-01-12T22:15:00.000", "2010-01-12T22:15:30.000"),
		window("2010-01-12T22:15:00.000", "2010-01-12T22:15:02.000"),
	}
	pan := []string{ // sliding windows: each needs tuples the last one lacked
		window("2010-01-12T22:15:00.000", "2010-01-12T22:15:02.000"),
		window("2010-01-12T22:15:02.000", "2010-01-12T22:15:04.000"),
		window("2010-01-12T22:15:04.000", "2010-01-12T22:15:06.000"),
		window("2010-01-12T22:15:06.000", "2010-01-12T22:15:08.000"),
	}

	configs := []struct {
		name string
		cfg  cache.Config
	}{
		{"no cache (paper's preliminary setup)", cache.Config{Policy: cache.NeverCache}},
		{"file-granular LRU", cache.Config{Policy: cache.LRU, Granularity: cache.FileGranular}},
		{"tuple-granular LRU", cache.Config{Policy: cache.LRU, Granularity: cache.TupleGranular}},
	}
	for _, session := range []struct {
		name    string
		queries []string
	}{{"ZOOM-IN", zoom}, {"PAN", pan}} {
		fmt.Printf("== %s session (4 queries on the same file) ==\n", session.name)
		for _, c := range configs {
			eng, err := core.Open(core.Options{
				Mode: core.ModeALi, RepoDir: m.Dir,
				DBDir: fmt.Sprintf("%s/db-%s-%p", work, session.name, &c),
				Cache: c.cfg,
			})
			if err != nil {
				log.Fatal(err)
			}
			var mounts, hits int
			ioBefore := eng.Clock().Elapsed()
			start := time.Now()
			for _, q := range session.queries {
				res, err := eng.Query(q)
				if err != nil {
					log.Fatal(err)
				}
				mounts += res.Stats.Mounts.FilesMounted
				hits += res.Stats.Mounts.CacheHits
			}
			elapsed := time.Since(start) + eng.Clock().Elapsed() - ioBefore
			fmt.Printf("  %-38s mounts=%d cache-hits=%d modeled=%v\n",
				c.name, mounts, hits, elapsed.Round(time.Millisecond))
			eng.Close()
		}
		fmt.Println()
	}
	fmt.Println("reading the results:")
	fmt.Println("  - zooming in: both granularities avoid re-mounting (later windows are contained)")
	fmt.Println("  - panning: tuple-granular caching keeps re-mounting the whole file, because")
	fmt.Println("    \"we need to mount the whole file even if there is one required tuple missing\"")
}
