// Quickstart: generate a small seismic repository, open it with the
// two-stage engine (metadata only — no waveform is ingested up-front),
// and run the paper's Query 1. This is the minimal end-to-end use of the
// public API: repo.Generate → core.Open → Engine.Query.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/repo"
)

func main() {
	work, err := os.MkdirTemp("", "quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	// 1. A repository of mSEED files: 2 stations x 3 channels x 13 days.
	spec := repo.DefaultSpec(work + "/repo")
	spec.Stations = spec.Stations[:2]
	spec.Days = 13
	m, err := repo.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repository: %d files, %d records, %d samples (%.1f MiB)\n",
		len(m.Files), m.Records, m.Samples, float64(m.Bytes)/(1<<20))

	// 2. Open with ALi: only metadata is loaded.
	eng, err := core.Open(core.Options{
		Mode:    core.ModeALi,
		RepoDir: m.Dir,
		DBDir:   work + "/db",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	rep := eng.Report()
	fmt.Printf("ready after loading %d metadata records in %v — no waveform ingested\n",
		rep.Metadata.Records, (rep.Wall + rep.ModeledIO).Round(time.Millisecond))

	// 3. The paper's Query 1: short-term average at station ISK, channel
	// BHE, over a two-second window.
	res, err := eng.Query(`SELECT AVG(D.sample_value)
		FROM F JOIN R ON F.uri = R.uri
		JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
		WHERE F.station = 'ISK' AND F.channel = 'BHE'
		AND R.start_time > '2010-01-12T00:00:00.000'
		AND R.start_time < '2010-01-12T23:59:59.999'
		AND D.sample_time > '2010-01-12T22:15:00.000'
		AND D.sample_time < '2010-01-12T22:15:02.000'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQuery 1 answer: AVG(sample_value) = %.3f\n", res.Float(0, 0))
	st := res.Stats
	fmt.Printf("two-stage execution: stage1 %v, stage2 %v (modeled total %v)\n",
		st.Stage1Wall.Round(time.Microsecond), st.Stage2Wall.Round(time.Microsecond),
		st.Modeled().Round(time.Microsecond))
	fmt.Printf("of %d repository files, %d were of interest and %d were mounted; %d records pruned by σ∘mount\n",
		len(eng.RepoFiles()), st.FilesOfInterest, st.Mounts.FilesMounted, st.Mounts.RecordsPruned)
}
