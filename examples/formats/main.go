// Generalization: "different scientific domains usually have different
// formats" (paper §5). The exact same two-stage engine explores a CSV
// sensor-log repository through a second format adapter — no engine code
// knows about either format; only the adapter does.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/csvfmt"
)

func main() {
	work, err := os.MkdirTemp("", "formats-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)
	repoDir := filepath.Join(work, "repo")
	if err := os.MkdirAll(repoDir, 0o755); err != nil {
		log.Fatal(err)
	}

	// A small sensor network: temperature loggers at three sites, two
	// segments (deployment periods) each.
	base := time.Date(2011, 6, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	hour := int64(time.Hour)
	sensors := []struct {
		file, sensor, site string
		level              float64
	}{
		{"t-alpha-01.csv", "TMP01", "alpha", 14},
		{"t-alpha-02.csv", "TMP02", "alpha", 15},
		{"t-delta-01.csv", "TMP03", "delta", 21},
	}
	for _, s := range sensors {
		segs := map[int64][]float64{}
		starts := map[int64]int64{}
		for seg := int64(0); seg < 2; seg++ {
			vals := make([]float64, 48) // 48 readings per segment
			for i := range vals {
				vals[i] = s.level + 3*math.Sin(float64(i)/8) + float64(seg)
			}
			segs[seg] = vals
			starts[seg] = base + seg*100*hour
		}
		err := csvfmt.WriteFile(filepath.Join(repoDir, s.file),
			s.sensor, s.site, "temperature", hour, segs, starts)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("wrote a 3-file CSV sensor repository")

	// The SAME engine, different adapter.
	eng, err := core.Open(core.Options{
		Mode:    core.ModeALi,
		RepoDir: repoDir,
		DBDir:   filepath.Join(work, "db"),
		Adapter: csvfmt.NewAdapter(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	fmt.Printf("metadata loaded: %d files, %d segments; readings not ingested\n\n",
		eng.Report().Metadata.Files, eng.Report().Metadata.Records)

	// Metadata-only: what is deployed where?
	res, err := eng.Query(`SELECT site, COUNT(*) AS sensors FROM CSV_FILES GROUP BY site ORDER BY site`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployments by site (first stage only):")
	fmt.Print(res.Format(0))

	// Two-stage: average temperature at site alpha. Only alpha's two
	// files are mounted.
	res, err = eng.Query(`SELECT AVG(CSV_READINGS.reading)
		FROM CSV_FILES JOIN CSV_SEGMENTS ON CSV_FILES.uri = CSV_SEGMENTS.uri
		JOIN CSV_READINGS ON CSV_SEGMENTS.uri = CSV_READINGS.uri
			AND CSV_SEGMENTS.record_id = CSV_READINGS.record_id
		WHERE CSV_FILES.site = 'alpha'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmean temperature at site alpha: %.2f °C\n", res.Float(0, 0))
	fmt.Printf("files of interest: %d of %d; mounted: %d\n",
		res.Stats.FilesOfInterest, len(eng.RepoFiles()), res.Stats.Mounts.FilesMounted)

	// Show the two-stage plan to prove the same machinery is at work.
	p, err := eng.Prepare(`SELECT MAX(CSV_READINGS.reading)
		FROM CSV_FILES JOIN CSV_SEGMENTS ON CSV_FILES.uri = CSV_SEGMENTS.uri
		JOIN CSV_READINGS ON CSV_SEGMENTS.uri = CSV_READINGS.uri
			AND CSV_SEGMENTS.record_id = CSV_READINGS.record_id
		WHERE CSV_FILES.sensor = 'TMP03'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe decomposed plan over the CSV schema:")
	fmt.Print(p.PlanString())
}
